#include "space/attribute_space.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace ares {
namespace {

TEST(AttributeSpace, UniformFactoryShape) {
  auto s = AttributeSpace::uniform(5, 3, 0, 80);
  EXPECT_EQ(s.dimensions(), 5);
  EXPECT_EQ(s.max_level(), 3);
  EXPECT_EQ(s.cells_per_dim(), 8u);
  EXPECT_EQ(s.dim(0).cuts.size(), 7u);
}

TEST(AttributeSpace, UniformCellIndexing) {
  auto s = AttributeSpace::uniform(1, 3, 0, 80);  // cells of width 10
  EXPECT_EQ(s.cell_index(0, 0), 0u);
  EXPECT_EQ(s.cell_index(0, 9), 0u);
  EXPECT_EQ(s.cell_index(0, 10), 1u);
  EXPECT_EQ(s.cell_index(0, 79), 7u);
  EXPECT_EQ(s.cell_index(0, 80), 7u);     // open-ended top cell
  EXPECT_EQ(s.cell_index(0, 100000), 7u); // no upper bound on values
}

TEST(AttributeSpace, IrregularCuts) {
  // The paper's example: one cell 0-128MB, another 4GB-8GB.
  DimensionSpec mem{"memory_mb", 0, {128, 512, 1024, 2048, 4096, 8192, 16384}};
  AttributeSpace s({mem}, 3);
  EXPECT_EQ(s.cell_index(0, 64), 0u);
  EXPECT_EQ(s.cell_index(0, 128), 1u);
  EXPECT_EQ(s.cell_index(0, 5000), 5u);
  EXPECT_EQ(s.cell_index(0, 999999), 7u);
}

TEST(AttributeSpace, CellValueBoundsRoundTrip) {
  auto s = AttributeSpace::uniform(1, 3, 0, 80);
  for (CellIndex i = 0; i < 8; ++i) {
    AttrValue lo = s.cell_value_lo(0, i);
    EXPECT_EQ(s.cell_index(0, lo), i);
    auto hi = s.cell_value_hi(0, i);
    if (hi) {
      EXPECT_EQ(s.cell_index(0, *hi), i);
      EXPECT_EQ(s.cell_index(0, *hi + 1), i + 1);
    } else {
      EXPECT_EQ(i, 7u);  // only the top cell is unbounded
    }
  }
}

TEST(AttributeSpace, CoordOfPoint) {
  auto s = AttributeSpace::uniform(3, 3, 0, 80);
  Point p{5, 45, 79};
  CellCoord c = s.coord_of(p);
  EXPECT_EQ(c, (CellCoord{0, 4, 7}));
}

TEST(AttributeSpace, CoordOfToleratesExtraTrailingValues) {
  auto s = AttributeSpace::uniform(2, 3, 0, 80);
  Point p{5, 45, 999};  // dynamic attributes appended beyond d
  EXPECT_EQ(s.coord_of(p).size(), 2u);
}

TEST(AttributeSpace, CellCount) {
  auto s = AttributeSpace::uniform(5, 3, 0, 80);
  EXPECT_EQ(s.cell_count(3), 1u);            // whole space
  EXPECT_EQ(s.cell_count(2), 32u);           // 2^5
  EXPECT_EQ(s.cell_count(0), 32768u);        // 8^5
}

TEST(AttributeSpace, CellCountSaturates) {
  auto s = AttributeSpace::uniform(16, 5, 0, 320);  // 80 bits > 64
  EXPECT_EQ(s.cell_count(0), std::numeric_limits<std::uint64_t>::max());
}

TEST(AttributeSpace, RejectsEmptyDimensions) {
  EXPECT_THROW(AttributeSpace({}, 3), std::invalid_argument);
}

TEST(AttributeSpace, RejectsMoreDimensionsThanInlineCapacity) {
  // Point/CellCoord store their elements inline (common/inline_vec.h), so
  // construction is the enforcement point for d <= kMaxDimensions. At the
  // cap it must succeed; one past it must throw with an actionable message.
  EXPECT_NO_THROW(
      AttributeSpace::uniform(static_cast<int>(kMaxDimensions), 3, 0, 80));
  try {
    AttributeSpace::uniform(static_cast<int>(kMaxDimensions) + 1, 3, 0, 80);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("inline descriptor capacity"),
              std::string::npos)
        << "actual message: " << e.what();
    EXPECT_NE(std::string(e.what()).find("kMaxDimensions"), std::string::npos);
  }
}

TEST(AttributeSpace, RejectsWrongCutCount) {
  DimensionSpec d{"x", 0, {10, 20}};  // needs 7 cuts for max_level 3
  EXPECT_THROW(AttributeSpace({d}, 3), std::invalid_argument);
}

TEST(AttributeSpace, RejectsUnsortedCuts) {
  DimensionSpec d{"x", 0, {10, 5, 20, 30, 40, 50, 60}};
  EXPECT_THROW(AttributeSpace({d}, 3), std::invalid_argument);
}

TEST(AttributeSpace, RejectsDuplicateCuts) {
  DimensionSpec d{"x", 0, {10, 10, 20, 30, 40, 50, 60}};
  EXPECT_THROW(AttributeSpace({d}, 3), std::invalid_argument);
}

TEST(AttributeSpace, RejectsBadUniformArgs) {
  EXPECT_THROW(AttributeSpace::uniform(0, 3, 0, 80), std::invalid_argument);
  EXPECT_THROW(AttributeSpace::uniform(2, 3, 80, 80), std::invalid_argument);
}

TEST(AttributeSpace, MaxLevelOne) {
  auto s = AttributeSpace::uniform(2, 1, 0, 8);
  EXPECT_EQ(s.cells_per_dim(), 2u);
  EXPECT_EQ(s.cell_index(0, 3), 0u);
  EXPECT_EQ(s.cell_index(0, 4), 1u);
}

}  // namespace
}  // namespace ares
