#include "space/cells.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace ares {
namespace {

TEST(Cells, AtLevel) {
  EXPECT_EQ(Cells::at_level(7, 0), 7u);
  EXPECT_EQ(Cells::at_level(7, 1), 3u);
  EXPECT_EQ(Cells::at_level(7, 3), 0u);
}

TEST(Cells, SameCell) {
  auto s = AttributeSpace::uniform(2, 3, 0, 80);
  Cells c(s);
  EXPECT_TRUE(c.same_cell({0, 0}, {1, 1}, 1));
  EXPECT_FALSE(c.same_cell({0, 0}, {2, 0}, 1));
  EXPECT_TRUE(c.same_cell({0, 0}, {2, 0}, 2));
  EXPECT_TRUE(c.same_cell({0, 0}, {7, 7}, 3));  // whole space is one C_3
}

TEST(Cells, CellRegion) {
  auto s = AttributeSpace::uniform(2, 3, 0, 80);
  Cells c(s);
  Region r0 = c.cell_region({5, 2}, 0);
  EXPECT_EQ(r0.interval(0), (IndexInterval{5, 5}));
  EXPECT_EQ(r0.interval(1), (IndexInterval{2, 2}));
  Region r2 = c.cell_region({5, 2}, 2);
  EXPECT_EQ(r2.interval(0), (IndexInterval{4, 7}));
  EXPECT_EQ(r2.interval(1), (IndexInterval{0, 3}));
}

TEST(Cells, NeighborRegionMatchesPaperConstruction) {
  // Figure 1(b) analogue for d=2, max(l)=3, node at coords (0,0):
  auto s = AttributeSpace::uniform(2, 3, 0, 80);
  Cells c(s);
  CellCoord a{0, 0};
  // N(3,0): the opposite half of the whole space along dim 0.
  Region n30 = c.neighbor_region(a, 3, 0);
  EXPECT_EQ(n30.interval(0), (IndexInterval{4, 7}));
  EXPECT_EQ(n30.interval(1), (IndexInterval{0, 7}));
  // N(3,1): same half along dim 0, opposite along dim 1.
  Region n31 = c.neighbor_region(a, 3, 1);
  EXPECT_EQ(n31.interval(0), (IndexInterval{0, 3}));
  EXPECT_EQ(n31.interval(1), (IndexInterval{4, 7}));
  // N(1,0): inside C_1 (cells 0..1 per dim), sibling along dim 0.
  Region n10 = c.neighbor_region(a, 1, 0);
  EXPECT_EQ(n10.interval(0), (IndexInterval{1, 1}));
  EXPECT_EQ(n10.interval(1), (IndexInterval{0, 1}));
}

TEST(Cells, NeighborRegionsDisjointFromOwnSubcell) {
  auto s = AttributeSpace::uniform(3, 3, 0, 80);
  Cells c(s);
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    CellCoord a{static_cast<CellIndex>(rng.below(8)),
                static_cast<CellIndex>(rng.below(8)),
                static_cast<CellIndex>(rng.below(8))};
    for (int l = 1; l <= 3; ++l) {
      Region own = c.cell_region(a, l - 1);
      for (int k = 0; k < 3; ++k) {
        Region n = c.neighbor_region(a, l, k);
        EXPECT_FALSE(n.intersects(own)) << "l=" << l << " k=" << k;
        EXPECT_FALSE(n.contains(a));
      }
    }
  }
}

TEST(Cells, ClassifySameZeroCell) {
  auto s = AttributeSpace::uniform(2, 3, 0, 80);
  Cells c(s);
  auto slot = c.classify({3, 3}, {3, 3});
  ASSERT_TRUE(slot.has_value());
  EXPECT_EQ(slot->level, 0);
}

TEST(Cells, ClassifyMatchesNeighborRegion) {
  // classify(self, other) must return exactly the (l,k) whose region
  // contains `other` — the core consistency between routing-table slotting
  // and query forwarding.
  auto s = AttributeSpace::uniform(4, 3, 0, 80);
  Cells c(s);
  Rng rng(7);
  for (int trial = 0; trial < 500; ++trial) {
    CellCoord a(4), b(4);
    for (int j = 0; j < 4; ++j) {
      a[static_cast<std::size_t>(j)] = static_cast<CellIndex>(rng.below(8));
      b[static_cast<std::size_t>(j)] = static_cast<CellIndex>(rng.below(8));
    }
    auto slot = c.classify(a, b);
    ASSERT_TRUE(slot.has_value());
    if (slot->level == 0) {
      EXPECT_EQ(a, b);
      continue;
    }
    EXPECT_TRUE(c.neighbor_region(a, slot->level, slot->dim).contains(b));
    // ... and no other slot's region contains b.
    for (int l = 1; l <= 3; ++l)
      for (int k = 0; k < 4; ++k) {
        if (l == slot->level && k == slot->dim) continue;
        EXPECT_FALSE(c.neighbor_region(a, l, k).contains(b))
            << "b also in N(" << l << "," << k << ")";
      }
  }
}

TEST(Cells, SubcellsPartitionTheSpace) {
  // For any node, C_0 plus all N(l,k) partition the whole grid: every cell
  // is in exactly one piece. (This is what guarantees full query coverage.)
  auto s = AttributeSpace::uniform(2, 3, 0, 80);
  Cells c(s);
  CellCoord a{5, 1};
  for (CellIndex x = 0; x < 8; ++x) {
    for (CellIndex y = 0; y < 8; ++y) {
      CellCoord b{x, y};
      int containers = c.cell_region(a, 0).contains(b) ? 1 : 0;
      for (int l = 1; l <= 3; ++l)
        for (int k = 0; k < 2; ++k)
          if (c.neighbor_region(a, l, k).contains(b)) ++containers;
      EXPECT_EQ(containers, 1) << "cell (" << x << "," << y << ")";
    }
  }
}

TEST(Cells, CellKeyGroupsByLevel) {
  auto s = AttributeSpace::uniform(2, 3, 0, 80);
  Cells c(s);
  EXPECT_EQ(c.cell_key({0, 0}, 1), c.cell_key({1, 1}, 1));
  EXPECT_NE(c.cell_key({0, 0}, 1), c.cell_key({2, 0}, 1));
  // Same cell coordinates at different levels must key differently.
  EXPECT_NE(c.cell_key({0, 0}, 0), c.cell_key({0, 0}, 1));
}

TEST(Cells, ClassifyNeverFailsOnRandomCoords) {
  auto s = AttributeSpace::uniform(6, 4, 0, 1 << 10);
  Cells c(s);
  Rng rng(11);
  for (int trial = 0; trial < 300; ++trial) {
    CellCoord a(6), b(6);
    for (int j = 0; j < 6; ++j) {
      a[static_cast<std::size_t>(j)] = static_cast<CellIndex>(rng.below(16));
      b[static_cast<std::size_t>(j)] = static_cast<CellIndex>(rng.below(16));
    }
    EXPECT_TRUE(c.classify(a, b).has_value());
  }
}

}  // namespace
}  // namespace ares
