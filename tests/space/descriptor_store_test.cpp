/// DescriptorStore (space/descriptor_store.h): the SoA memory layer behind
/// CompactPeer handles. The write-discipline contract — put() authoritative,
/// put_if_absent() never overwrites — is what makes worker-phase reads safe
/// under the sharded simulator, so it gets pinned explicitly.

#include "space/descriptor_store.h"

#include <gtest/gtest.h>

namespace ares {
namespace {

class DescriptorStoreTest : public ::testing::Test {
 protected:
  AttributeSpace space = AttributeSpace::uniform(3, 3, 0, 80);
  DescriptorStore store{space};
};

TEST_F(DescriptorStoreTest, PutThenReadBackRoundTrips) {
  Point p{10, 45, 79};
  store.put(7, p);
  ASSERT_TRUE(store.contains(7));
  EXPECT_EQ(store.point_of(7), p);
  EXPECT_EQ(store.coord_of(7), space.coord_of(p));
  EXPECT_EQ(store.size(), 1u);
}

TEST_F(DescriptorStoreTest, UnknownIdsAreAbsent) {
  EXPECT_FALSE(store.contains(0));
  EXPECT_FALSE(store.contains(123456));
  EXPECT_EQ(store.size(), 0u);
}

TEST_F(DescriptorStoreTest, PutOverwritesAndRecomputesCoord) {
  store.put(3, Point{0, 0, 0});
  store.put(3, Point{79, 79, 79});
  EXPECT_EQ(store.point_of(3), (Point{79, 79, 79}));
  EXPECT_EQ(store.coord_of(3), space.coord_of(Point{79, 79, 79}));
  EXPECT_EQ(store.size(), 1u);  // an overwrite is not a new row
}

TEST_F(DescriptorStoreTest, PutIfAbsentNeverOverwrites) {
  EXPECT_TRUE(store.put_if_absent(5, Point{1, 2, 3}));
  // A stale descriptor still circulating in gossip must not roll back the
  // authoritative profile.
  EXPECT_FALSE(store.put_if_absent(5, Point{9, 9, 9}));
  EXPECT_EQ(store.point_of(5), (Point{1, 2, 3}));
}

TEST_F(DescriptorStoreTest, SparseIdsAndRawRowAccess) {
  store.put(100, Point{40, 40, 40});
  EXPECT_FALSE(store.contains(99));
  const AttrValue* v = store.values_ptr(100);
  const CellIndex* c = store.coord_ptr(100);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(v[i], 40);
    EXPECT_EQ(c[i], space.coord_of(Point{40, 40, 40})[i]);
  }
}

TEST_F(DescriptorStoreTest, MemoryStaysCompact) {
  // The point of the store: ~d*(8+4) bytes per row plus the presence byte,
  // not the 216-byte flat PeerDescriptor. Allow 4x slack for vector growth.
  store.reserve(1000);
  for (NodeId id = 0; id < 1000; ++id) store.put(id, Point{1, 2, 3});
  const std::size_t per_row = 3 * (sizeof(AttrValue) + sizeof(CellIndex)) + 1;
  EXPECT_LE(store.memory_bytes(), 4 * 1000 * per_row);
  EXPECT_EQ(store.size(), 1000u);
}

}  // namespace
}  // namespace ares
