#include "space/query.h"

#include <gtest/gtest.h>

namespace ares {
namespace {

TEST(AttrRange, Contains) {
  AttrRange r{10, 20};
  EXPECT_TRUE(r.contains(10));
  EXPECT_TRUE(r.contains(20));
  EXPECT_FALSE(r.contains(9));
  EXPECT_FALSE(r.contains(21));
}

TEST(AttrRange, HalfOpenBounds) {
  AttrRange lower_only{10, std::nullopt};
  EXPECT_TRUE(lower_only.contains(1'000'000));
  EXPECT_FALSE(lower_only.contains(9));
  AttrRange upper_only{std::nullopt, 20};
  EXPECT_TRUE(upper_only.contains(0));
  EXPECT_FALSE(upper_only.contains(21));
}

TEST(AttrRange, Unconstrained) {
  AttrRange any{};
  EXPECT_TRUE(any.unconstrained());
  EXPECT_TRUE(any.contains(0));
  EXPECT_TRUE(any.contains(~AttrValue{0}));
}

TEST(RangeQuery, AnyMatchesEverything) {
  auto q = RangeQuery::any(3);
  EXPECT_TRUE(q.matches({0, 0, 0}));
  EXPECT_TRUE(q.matches({80, 80, 80}));
}

TEST(RangeQuery, ConjunctionSemantics) {
  // The paper's example shape: CPU fixed, MEM >= 4GB, etc.
  auto q = RangeQuery::any(3).with(0, 5, 5).with(1, 40, std::nullopt);
  EXPECT_TRUE(q.matches({5, 40, 0}));
  EXPECT_TRUE(q.matches({5, 99, 77}));
  EXPECT_FALSE(q.matches({4, 99, 0}));  // dim 0 fails
  EXPECT_FALSE(q.matches({5, 39, 0}));  // dim 1 fails
}

TEST(RangeQuery, MatchesIgnoresExtraTrailingValues) {
  auto q = RangeQuery::any(2).with(0, 1, 2);
  EXPECT_TRUE(q.matches({2, 0, 999}));
}

TEST(RangeQuery, DynamicFiltersCheckedSeparately) {
  auto q = RangeQuery::any(2).with_dynamic(0, 100, std::nullopt);
  EXPECT_TRUE(q.has_dynamic_filters());
  EXPECT_TRUE(q.matches({0, 0}));  // routed match unaffected
  EXPECT_TRUE(q.matches_dynamic({150}));
  EXPECT_FALSE(q.matches_dynamic({50}));
  EXPECT_FALSE(q.matches_dynamic({}));  // missing dynamic attr fails
}

TEST(RangeQuery, NoDynamicFiltersAlwaysPass) {
  auto q = RangeQuery::any(2);
  EXPECT_FALSE(q.has_dynamic_filters());
  EXPECT_TRUE(q.matches_dynamic({}));
}

TEST(RangeQuery, ToRegionMapsValueRanges) {
  auto s = AttributeSpace::uniform(2, 3, 0, 80);  // width-10 cells
  auto q = RangeQuery::any(2).with(0, 15, 44);
  Region r = q.to_region(s);
  EXPECT_EQ(r.interval(0), (IndexInterval{1, 4}));
  EXPECT_EQ(r.interval(1), (IndexInterval{0, 7}));  // unconstrained
}

TEST(RangeQuery, ToRegionOpenUpperBound) {
  auto s = AttributeSpace::uniform(1, 3, 0, 80);
  auto q = RangeQuery::any(1).with(0, 75, std::nullopt);
  Region r = q.to_region(s);
  EXPECT_EQ(r.interval(0), (IndexInterval{7, 7}));
}

TEST(RangeQuery, ToRegionIsConservativeAtCellGranularity) {
  auto s = AttributeSpace::uniform(1, 3, 0, 80);
  // Range [12, 13] covers part of cell 1 only.
  auto q = RangeQuery::any(1).with(0, 12, 13);
  Region r = q.to_region(s);
  EXPECT_EQ(r.interval(0), (IndexInterval{1, 1}));
  // A node in cell 1 outside the value range must not match even though its
  // cell is in the region (that's the "overhead" semantics).
  EXPECT_FALSE(q.matches({15}));
  EXPECT_TRUE(q.matches({12}));
}

TEST(RangeQuery, EqualityIncludesDynamicFilters) {
  auto a = RangeQuery::any(2).with(0, 1, 2);
  auto b = RangeQuery::any(2).with(0, 1, 2);
  EXPECT_EQ(a, b);
  b.with_dynamic(0, 5, 6);
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace ares
