#include "space/region.h"

#include <gtest/gtest.h>

namespace ares {
namespace {

TEST(IndexInterval, Basics) {
  IndexInterval iv{2, 5};
  EXPECT_TRUE(iv.contains(2));
  EXPECT_TRUE(iv.contains(5));
  EXPECT_FALSE(iv.contains(1));
  EXPECT_FALSE(iv.contains(6));
  EXPECT_EQ(iv.width(), 4u);
  EXPECT_FALSE(iv.empty());
}

TEST(IndexInterval, EmptyInterval) {
  IndexInterval iv{5, 2};
  EXPECT_TRUE(iv.empty());
  EXPECT_EQ(iv.width(), 0u);
}

TEST(IndexInterval, Intersects) {
  EXPECT_TRUE((IndexInterval{0, 3}.intersects({3, 7})));
  EXPECT_TRUE((IndexInterval{3, 7}.intersects({0, 3})));
  EXPECT_FALSE((IndexInterval{0, 2}.intersects({3, 7})));
}

TEST(Region, WholeCoversEverything) {
  auto s = AttributeSpace::uniform(3, 3, 0, 80);
  Region w = Region::whole(s);
  EXPECT_EQ(w.dimensions(), 3);
  EXPECT_TRUE(w.contains({0, 0, 0}));
  EXPECT_TRUE(w.contains({7, 7, 7}));
  EXPECT_EQ(w.cell_volume(), 512u);
}

TEST(Region, ContainsPerDimension) {
  Region r({{1, 3}, {4, 6}});
  EXPECT_TRUE(r.contains({2, 5}));
  EXPECT_FALSE(r.contains({0, 5}));
  EXPECT_FALSE(r.contains({2, 7}));
}

TEST(Region, IntersectsAndIntersect) {
  Region a({{0, 3}, {0, 3}});
  Region b({{2, 5}, {3, 6}});
  EXPECT_TRUE(a.intersects(b));
  Region c = a.intersect(b);
  EXPECT_EQ(c.interval(0), (IndexInterval{2, 3}));
  EXPECT_EQ(c.interval(1), (IndexInterval{3, 3}));
  EXPECT_EQ(c.cell_volume(), 2u);
}

TEST(Region, DisjointIntersection) {
  Region a({{0, 1}, {0, 1}});
  Region b({{4, 5}, {0, 1}});
  EXPECT_FALSE(a.intersects(b));
  EXPECT_TRUE(a.intersect(b).empty());
  EXPECT_EQ(a.intersect(b).cell_volume(), 0u);
}

TEST(Region, TouchingEdgesIntersect) {
  Region a({{0, 2}});
  Region b({{2, 4}});
  EXPECT_TRUE(a.intersects(b));
  EXPECT_EQ(a.intersect(b).cell_volume(), 1u);
}

TEST(Region, EmptyWhenAnyDimensionEmpty) {
  Region r({{0, 3}, {5, 2}});
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.cell_volume(), 0u);
}

TEST(Region, DefaultRegionIsEmpty) {
  Region r;
  EXPECT_TRUE(r.empty());
}

}  // namespace
}  // namespace ares
