/// Cell-prefix shard partitioning (shard_of_coord, space/cells.h): the shard
/// key the sharded simulator (sim/sharded.h) uses to place nodes. Three
/// contracts matter for correctness and are pinned here:
///
///   1. Totality/determinism — every coord maps to exactly one shard in
///      [0, S), as a pure function of (space geometry, coord, S). Churn
///      cannot remap survivors: a node's shard never depends on who else is
///      in the network.
///   2. Balance — splitting the b-bit interleaved key range into S
///      contiguous fixed-point slices gives slice sizes within 1 key of each
///      other, i.e. population ratio <= ceil(2^b/S)/floor(2^b/S) <= 2 for
///      uniformly distributed coords.
///   3. Locality — the slice split is monotone in the MSB-first interleaved
///      key, so nodes sharing a coarse-cell prefix land on the same or
///      adjacent shards (the selective-gossip traffic pattern stays mostly
///      intra-shard).

#include "space/cells.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.h"
#include "workload/distributions.h"

namespace ares {
namespace {

std::vector<CellCoord> all_level0_coords(const AttributeSpace& s) {
  const CellIndex per_dim = static_cast<CellIndex>(1U << s.max_level());
  const int d = s.dimensions();
  std::vector<CellCoord> out;
  CellCoord cur;
  for (int i = 0; i < d; ++i) cur.push_back(0);
  while (true) {
    out.push_back(cur);
    int j = d - 1;
    for (; j >= 0; --j) {
      if (++cur[j] < per_dim) break;
      cur[j] = 0;
    }
    if (j < 0) break;
  }
  return out;
}

TEST(ShardMap, EveryCoordMapsToExactlyOneShardInRange) {
  auto s = AttributeSpace::uniform(3, 3, 0, 80);
  auto gen = uniform_points(s, 0, 80);
  Rng rng(7);
  for (std::uint32_t shards : {1u, 2u, 3u, 8u, 64u}) {
    for (int i = 0; i < 500; ++i) {
      CellCoord c = s.coord_of(gen(rng));
      std::uint32_t sh = shard_of_coord(s, c, shards);
      EXPECT_LT(sh, shards);
      // Pure function: recomputation agrees.
      EXPECT_EQ(sh, shard_of_coord(s, c, shards));
    }
  }
}

TEST(ShardMap, SingleShardAndDegenerateSpaceMapToZero) {
  auto s = AttributeSpace::uniform(2, 3, 0, 80);
  EXPECT_EQ(shard_of_coord(s, {5, 2}, 0), 0u);
  EXPECT_EQ(shard_of_coord(s, {5, 2}, 1), 0u);
}

TEST(ShardMap, KeySlicePopulationsWithinDocumentedBound) {
  // d=2, L=3: 64 level-0 cells, all enumerable. The fixed-point split must
  // put within-1 key counts in every slice — the ceil/floor <= 2 bound from
  // the header, exactly.
  auto s = AttributeSpace::uniform(2, 3, 0, 80);
  auto coords = all_level0_coords(s);
  ASSERT_EQ(coords.size(), 64u);
  for (std::uint32_t shards : {2u, 3u, 5u, 8u, 64u}) {
    std::map<std::uint32_t, std::size_t> pop;
    for (const CellCoord& c : coords) ++pop[shard_of_coord(s, c, shards)];
    ASSERT_EQ(pop.size(), std::min<std::size_t>(shards, coords.size()));
    std::size_t lo = coords.size(), hi = 0;
    for (const auto& [sh, n] : pop) {
      lo = std::min(lo, n);
      hi = std::max(hi, n);
    }
    EXPECT_LE(hi - lo, 1u) << "shards=" << shards;
    EXPECT_LE(hi, (coords.size() + shards - 1) / shards) << "shards=" << shards;
  }
}

TEST(ShardMap, MonotoneInInterleavedKeyOrder) {
  // Enumerating coords in MSB-first interleaved-key order must yield a
  // nondecreasing shard sequence: contiguous slices, so a coarse-cell
  // subtree spans at most adjacent shards.
  auto s = AttributeSpace::uniform(2, 3, 0, 80);
  auto coords = all_level0_coords(s);
  std::map<std::uint64_t, std::uint32_t> by_key;
  for (const CellCoord& c : coords) {
    std::uint64_t key = 0;
    for (int b = s.max_level() - 1; b >= 0; --b)
      for (std::size_t j = 0; j < c.size(); ++j)
        key = (key << 1) | ((c[j] >> b) & 1U);
    by_key[key] = shard_of_coord(s, c, 8);
  }
  std::uint32_t prev = 0;
  for (const auto& [key, sh] : by_key) {
    EXPECT_GE(sh, prev);
    prev = sh;
  }
}

TEST(ShardMap, RemappingUnderChurnIsDeterministic) {
  // A churn wave removes half the nodes; survivors' shard assignments are
  // untouched, and a departed node that rejoins with the same values gets
  // its old shard back. (shard_of_coord sees only the coord, but this is
  // the property the sharded Network relies on, so pin it end to end.)
  auto s = AttributeSpace::uniform(3, 3, 0, 80);
  auto gen = uniform_points(s, 0, 80);
  Rng rng(11);
  std::vector<CellCoord> population;
  for (int i = 0; i < 200; ++i) population.push_back(s.coord_of(gen(rng)));

  std::vector<std::uint32_t> before;
  for (const CellCoord& c : population) before.push_back(shard_of_coord(s, c, 8));

  // "Churn": drop the odd-indexed half, then recompute the survivors.
  for (std::size_t i = 0; i < population.size(); i += 2) {
    EXPECT_EQ(shard_of_coord(s, population[i], 8), before[i]);
  }
  // Rejoin with identical values -> identical shard.
  EXPECT_EQ(shard_of_coord(s, population[1], 8), before[1]);
}

}  // namespace
}  // namespace ares
