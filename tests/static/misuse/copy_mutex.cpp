// MUST NOT COMPILE: ares::Mutex is not copyable — a copied mutex would
// silently guard nothing (two locks, one logical resource).
#include "common/mutex.h"

int main() {
  ares::Mutex a{"test.copy_a", ares::lockrank::kTest};
  ares::Mutex b = a;  // error: copy constructor is deleted
  (void)b;
  return 0;
}
