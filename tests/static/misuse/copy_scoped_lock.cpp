// MUST NOT COMPILE: MutexLock is not copyable — a copied guard would
// double-unlock on destruction.
#include "common/mutex.h"

int main() {
  ares::Mutex mu{"test.copy_guard", ares::lockrank::kTest};
  ares::MutexLock lk(&mu);
  ares::MutexLock lk2 = lk;  // error: copy constructor is deleted
  return 0;
}
