// MUST NOT COMPILE: ares::Mutex::lock() is private — critical sections are
// scoped (MutexLock), never opened by hand. (Friendship is limited to
// MutexLock and CondVar.)
#include "common/mutex.h"

int main() {
  ares::Mutex mu{"test.raw_lock", ares::lockrank::kTest};
  mu.lock();  // error: 'lock' is a private member
  return 0;
}
