// MUST NOT COMPILE: ares::Mutex::unlock() is private — a critical section
// cannot be ended by hand, only by MutexLock leaving scope.
#include "common/mutex.h"

int main() {
  ares::Mutex mu{"test.raw_unlock", ares::lockrank::kTest};
  mu.unlock();  // error: 'unlock' is a private member
  return 0;
}
