// MUST NOT COMPILE: every ares::Mutex carries a name and a lock rank
// (DESIGN.md §11) — there is deliberately no default constructor, so a
// mutex cannot be added to the tree without declaring where it sits in the
// hierarchy.
#include "common/mutex.h"

int main() {
  ares::Mutex mu;  // error: no default constructor
  (void)mu;
  return 0;
}
