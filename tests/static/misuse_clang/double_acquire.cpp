// MUST NOT COMPILE under -Wthread-safety -Werror: acquiring a mutex
// already held by the same scope (ares::Mutex is non-recursive; at runtime
// this deadlocks, and in debug builds the rank checker aborts first).
#include "common/mutex.h"

int main() {
  ares::Mutex mu{"test.double", ares::lockrank::kTest};
  ares::MutexLock a(&mu);
  ares::MutexLock b(&mu);  // error: acquiring mutex 'mu' that is already held
  return 0;
}
