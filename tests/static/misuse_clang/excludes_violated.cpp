// MUST NOT COMPILE under -Wthread-safety -Werror: calling a function
// annotated ARES_EXCLUDES(mu) while holding mu (the callee takes the lock
// itself — the caller holding it would self-deadlock).
#include "common/mutex.h"

namespace {

class Stats {
 public:
  int total() const ARES_EXCLUDES(mu_) {
    ares::MutexLock lock(&mu_);
    return total_;
  }

  int broken_caller() const {
    ares::MutexLock lock(&mu_);
    return total();  // error: cannot call function 'total' while mutex 'mu_' is held
  }

 private:
  mutable ares::Mutex mu_{"test.excludes", ares::lockrank::kTest};
  int total_ ARES_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Stats s;
  return s.broken_caller();
}
