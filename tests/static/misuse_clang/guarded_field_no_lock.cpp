// MUST NOT COMPILE under -Wthread-safety -Werror: writing a field marked
// ARES_GUARDED_BY without holding its mutex.
#include "common/mutex.h"

namespace {

class Counter {
 public:
  void bump_unlocked() {
    ++count_;  // error: writing variable 'count_' requires holding mutex 'mu_'
  }

 private:
  ares::Mutex mu_{"test.guarded", ares::lockrank::kTest};
  int count_ ARES_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.bump_unlocked();
  return 0;
}
