// MUST NOT COMPILE under -Wthread-safety -Werror: calling a function
// annotated ARES_REQUIRES(mu) without holding mu.
#include "common/mutex.h"

namespace {

class Table {
 public:
  int size_locked() const ARES_REQUIRES(mu_) { return size_; }
  int size_unsafe() const {
    return size_locked();  // error: requires holding mutex 'mu_'
  }

 private:
  mutable ares::Mutex mu_{"test.requires", ares::lockrank::kTest};
  int size_ ARES_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Table t;
  return t.size_unsafe();
}
