// Positive control for the negative-compile suite: correct use of the full
// annotated concurrency API. Must compile clean with the exact flags the
// misuse tests use (including -Wthread-safety -Werror under clang) — if
// this file ever fails, the negative results above are meaningless.
#include "common/mutex.h"

namespace {

class Queue {
 public:
  void push(int v) ARES_EXCLUDES(mu_) {
    ares::MutexLock lock(&mu_);
    buf_[n_++ % kCap] = v;
    cv_.notify_one();
  }

  int pop() ARES_EXCLUDES(mu_) {
    ares::MutexLock lock(&mu_);
    // Manual predicate loop: the analysis sees the guarded read of n_
    // under the held capability (a lambda predicate would not).
    while (n_ == taken_) cv_.wait(mu_);
    return buf_[taken_++ % kCap];
  }

  int size() const ARES_EXCLUDES(mu_) {
    ares::MutexLock lock(&mu_);
    return size_locked();
  }

 private:
  int size_locked() const ARES_REQUIRES(mu_) { return n_ - taken_; }

  static constexpr int kCap = 8;
  mutable ares::Mutex mu_{"test.positive.queue", ares::lockrank::kTest};
  ares::CondVar cv_;
  int buf_[kCap] ARES_GUARDED_BY(mu_) = {};
  int n_ ARES_GUARDED_BY(mu_) = 0;
  int taken_ ARES_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Queue q;
  q.push(1);
  q.push(2);
  int got = q.pop();
  return got == 1 && q.size() == 1 ? 0 : 1;
}
