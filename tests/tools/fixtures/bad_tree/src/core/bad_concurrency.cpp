// Fixture: every pattern in here must be flagged.
//
//   raw-mutex        <mutex> include, std::mutex member, std::lock_guard,
//                    naked m_.unlock() call
//   mutex-guard      two ares::Mutex members with no ARES_GUARDED_BY (or
//                    other annotation) user in the file
//   atomic-ordering  two std::atomic declarations without an
//                    `// ordering:` note
#include <atomic>
#include <mutex>

namespace ares {

class Mutex;  // stand-in: the rule keys on the spelling, not the real type

class BadConcurrency {
 public:
  void bump() {
    std::lock_guard<std::mutex> lock(m_);
    ++count_;
  }

  void leak_critical_section() { m_.unlock(); }

 private:
  std::mutex m_;
  Mutex unguarded_a_;  // never referenced by any ARES_* annotation
  Mutex unguarded_b_;
  std::atomic<int> racy_flag_{0};
  std::atomic<unsigned> racy_count_{0};
  int count_ = 0;
};

}  // namespace ares
