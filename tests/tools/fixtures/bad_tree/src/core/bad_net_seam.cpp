// net-seam fixture: raw syscall headers outside src/net. All three includes
// must fire — core code talks to the kernel only through net/process.h
// wrappers (sockets, event loops, and process control alike).
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace ares {

int open_raw_socket() { return socket(2 /*AF_INET*/, 2 /*SOCK_DGRAM*/, 0); }

int make_raw_epoll() { return epoll_create1(0); }

void close_raw_socket(int fd) { close(fd); }

}  // namespace ares
