// Fixture: raw descriptor-coordinate vector spellings outside common/.
// Both lines must trip the raw-descriptor-vec rule — descriptor coordinates
// are inline types (Point / CellCoord), never std::vector.

#include <vector>

using AttrValue = unsigned long long;
using CellIndex = unsigned;

std::vector<AttrValue> values_the_wrong_way() { return {1, 2, 3}; }

std::vector<CellIndex> coord_the_wrong_way() { return {4, 5}; }
