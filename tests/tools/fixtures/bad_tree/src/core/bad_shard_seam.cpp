// Fixture: direct use of sharded-execution primitives outside src/sim.
// Both call sites must trip the shard-seam rule — protocol code never
// schedules into shard queues directly; everything crosses the Network
// send/timer seam.

namespace ares {

struct FakeQueue {
  void push_keyed(long t, unsigned long long seq, int action);
};

struct FakeEngine {
  unsigned long long alloc_key(unsigned src);
};

void bypass_the_seam(FakeQueue& q, FakeEngine& eng) {
  q.push_keyed(10, eng.alloc_key(3), 0);
}

}  // namespace ares
