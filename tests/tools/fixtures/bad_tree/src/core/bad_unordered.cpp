#include <unordered_map>
#include <unordered_set>

// Fixture: both traversal forms the unordered-iter rule must catch, with no
// suppression tags.

namespace ares {

struct Tracker {
  std::unordered_map<int, int> counts;
  std::unordered_set<int> seen;
};

int leak_hash_order(const Tracker& t) {
  int sum = 0;
  for (const auto& kv : t.counts) sum += kv.second;  // range-for traversal
  for (auto it = t.seen.begin(); it != t.seen.end(); ++it) sum += *it;
  return sum;
}

}  // namespace ares
