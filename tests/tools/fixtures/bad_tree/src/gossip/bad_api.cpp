#include <cstdlib>
#include <random>

// Fixture: two forbidden-API uses in a protocol layer (gossip), untagged.

namespace ares {

unsigned nondeterministic_seed() {
  std::random_device rd;  // forbidden: ambient entropy in protocol code
  return rd();
}

const char* env_peek() {
  return std::getenv("ARES_FIXTURE");  // forbidden: env access in protocol code
}

}  // namespace ares
