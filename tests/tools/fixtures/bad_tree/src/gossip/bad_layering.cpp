// Fixture: gossip may include only {common, space, runtime, gossip} — both
// edges below are forbidden and must be reported.
#include "exp/grid.h"
#include "sim/network.h"

namespace ares {

void touch() {}

}  // namespace ares
