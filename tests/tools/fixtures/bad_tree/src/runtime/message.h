#pragma once
// Fixture: kPong below is registered nowhere and tested nowhere — the codec
// rule must flag it twice (missing registration, missing round-trip case).

namespace ares::wire {

enum class Kind : unsigned char {
  kInvalid = 0,
  kPing = 1,
  kPong = 2,
  kTestBase = 240,
};

}  // namespace ares::wire
