#include "runtime/message.h"

// Fixture: only kPing is registered; kPong is missing.
namespace ares::wire {

void register_builtin_codecs() {
  register_codec(Kind::kPing, {});
}

// Fixture: both delta registrations lack a matching register_codec() —
// the delta-codec rule must flag each (a delta-only kind is unreadable by
// v1 peers and when delta mode is off).
void register_builtin_delta_codecs() {
  register_delta_codec(Kind::kPong, {});
  register_delta_codec(Kind::kTestBase, {});
}

}  // namespace ares::wire
