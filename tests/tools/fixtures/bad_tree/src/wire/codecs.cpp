#include "runtime/message.h"

// Fixture: only kPing is registered; kPong is missing.
namespace ares::wire {

void register_builtin_codecs() {
  register_codec(Kind::kPing, {});
}

}  // namespace ares::wire
