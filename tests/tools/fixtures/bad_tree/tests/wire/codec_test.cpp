#include "runtime/message.h"

// Fixture: round-trip coverage mentions only kPing; kPong is missing.
void roundtrip_all() {
  auto k = ares::wire::Kind::kPing;
  (void)k;
}
