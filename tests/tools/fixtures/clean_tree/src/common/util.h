#pragma once

namespace ares {

inline int identity(int v) { return v; }

}  // namespace ares
