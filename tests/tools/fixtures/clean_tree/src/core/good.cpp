#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "space/geometry.h"

// Fixture: near-miss code the linter must NOT flag — membership-only use of
// unordered containers, a range-for over a plain vector, plus exactly one
// documented suppression (counted by the baseline machinery).

namespace ares {

struct Dedup {
  std::unordered_set<int> seen;
  std::unordered_map<int, int> weights;
};

int membership_only(Dedup& d, const std::vector<int>& ids) {
  int fresh = 0;
  for (int id : ids) {  // vector traversal: ordered, fine
    if (d.seen.insert(id).second) ++fresh;
    auto it = d.weights.find(id);  // lookup, not traversal: fine
    if (it != d.weights.end()) fresh += it->second;
  }
  return fresh;
}

int documented_traversal(const Dedup& d) {
  int sum = 0;
  // ares-lint: unordered-iter-ok(commutative sum; order cannot leak)
  for (const auto& kv : d.weights) sum += kv.second;
  return sum;
}

}  // namespace ares
