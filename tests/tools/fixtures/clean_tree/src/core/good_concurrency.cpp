// Fixture: the sanctioned concurrency idioms — none of these may be
// flagged. ares::Mutex with an annotated guarded field, MutexLock scoping,
// and a std::atomic carrying its ordering note.
#include <atomic>

#include "common/mutex.h"

namespace ares {

class GoodConcurrency {
 public:
  void bump() {
    MutexLock lock(&mu_);
    ++count_;
  }

  int count() const ARES_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return count_;
  }

 private:
  mutable Mutex mu_{"fixture.good", lockrank::kTest};
  int count_ ARES_GUARDED_BY(mu_) = 0;
  // ordering: relaxed — monotonic progress flag, no data published through
  // it; readers tolerate staleness.
  std::atomic<bool> started_{false};
};

}  // namespace ares
