#pragma once
// Fixture: every non-sentinel kind is registered and round-trip tested.

namespace ares::wire {

enum class Kind : unsigned char {
  kInvalid = 0,
  kPing = 1,
  kTestBase = 240,
};

}  // namespace ares::wire
