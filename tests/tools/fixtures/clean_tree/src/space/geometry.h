#pragma once

#include "common/util.h"

namespace ares {

inline int twice(int v) { return 2 * v; }

}  // namespace ares
