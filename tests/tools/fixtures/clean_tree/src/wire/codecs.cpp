#include "runtime/message.h"

namespace ares::wire {

void register_builtin_codecs() {
  register_codec(Kind::kPing, {});
}

// A delta codec is clean exactly when its kind keeps the legacy
// registration above (the delta-codec rule's pairing requirement).
void register_builtin_delta_codecs() {
  register_delta_codec(Kind::kPing, {});
}

}  // namespace ares::wire
