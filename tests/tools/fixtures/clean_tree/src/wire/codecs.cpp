#include "runtime/message.h"

namespace ares::wire {

void register_builtin_codecs() {
  register_codec(Kind::kPing, {});
}

}  // namespace ares::wire
