#include "runtime/message.h"

void roundtrip_all() {
  auto k = ares::wire::Kind::kPing;
  (void)k;
}
