#include "wire/codecs.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace ares::wire {
namespace {

// ---- buffer primitives ----------------------------------------------------

TEST(WireBuffer, FixedWidthRoundTrip) {
  Writer w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  Reader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.at_end());
}

TEST(WireBuffer, VarintRoundTripSweep) {
  for (std::uint64_t v :
       {0ull, 1ull, 127ull, 128ull, 300ull, 16383ull, 16384ull,
        0xFFFFFFFFull, ~0ull}) {
    Writer w;
    w.varint(v);
    Reader r(w.bytes());
    EXPECT_EQ(r.varint(), v);
    EXPECT_TRUE(r.ok());
  }
}

TEST(WireBuffer, VarintCompactness) {
  Writer w;
  w.varint(5);
  EXPECT_EQ(w.size(), 1u);
  Writer w2;
  w2.varint(300);
  EXPECT_EQ(w2.size(), 2u);
}

TEST(WireBuffer, OptionalRoundTrip) {
  Writer w;
  w.opt_u64(std::nullopt);
  w.opt_u64(42);
  Reader r(w.bytes());
  EXPECT_EQ(r.opt_u64(), std::nullopt);
  EXPECT_EQ(r.opt_u64(), std::optional<std::uint64_t>(42));
  EXPECT_TRUE(r.ok());
}

TEST(WireBuffer, StringRoundTrip) {
  Writer w;
  w.str("hello world");
  w.str("");
  std::string with_nul("a\0b", 3);
  w.str(with_nul);
  Reader r(w.bytes());
  EXPECT_EQ(r.str(), "hello world");
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.str(), with_nul);  // embedded NULs survive
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.at_end());
}

TEST(WireBuffer, TruncatedReadSetsError) {
  Writer w;
  w.u16(7);
  Reader r(w.bytes());
  r.u32();  // more than available
  EXPECT_FALSE(r.ok());
}

TEST(WireBuffer, StickyErrorNeverRecovers) {
  Reader r(nullptr, 0);
  r.u8();
  EXPECT_FALSE(r.ok());
  // Subsequent reads stay failed and return zero.
  EXPECT_EQ(r.u64(), 0u);
  EXPECT_FALSE(r.ok());
}

TEST(WireBuffer, OversizedVarintRejected) {
  Writer w;
  for (int i = 0; i < 11; ++i) w.u8(0x80);  // continuation forever
  Reader r(w.bytes());
  r.varint();
  EXPECT_FALSE(r.ok());
}

TEST(WireBuffer, BadPresenceByteRejected) {
  Writer w;
  w.u8(7);  // presence must be 0/1
  Reader r(w.bytes());
  r.opt_u64();
  EXPECT_FALSE(r.ok());
}

TEST(WireBuffer, CountBombRejected) {
  Writer w;
  w.varint(1'000'000);  // claims a million elements in a 3-byte buffer
  Reader r(w.bytes());
  r.count(4);
  EXPECT_FALSE(r.ok());
}

// ---- message codecs ---------------------------------------------------------

PeerDescriptor sample_descriptor(NodeId id) {
  return PeerDescriptor{id, {10, 20, 30}, {1, 2, 3}, 4};
}

template <typename T>
std::unique_ptr<T> round_trip(const T& msg) {
  auto bytes = encode(msg);
  EXPECT_FALSE(bytes.empty());
  MessagePtr decoded = decode(bytes);
  EXPECT_NE(decoded, nullptr);
  auto* typed = dynamic_cast<T*>(decoded.get());
  EXPECT_NE(typed, nullptr);
  if (typed == nullptr) return nullptr;
  decoded.release();
  return std::unique_ptr<T>(typed);
}

TEST(WireCodec, CyclonRoundTrip) {
  CyclonShuffleMsg m;
  m.is_reply = true;
  m.entries = {sample_descriptor(1), sample_descriptor(2)};
  auto out = round_trip(m);
  ASSERT_NE(out, nullptr);
  EXPECT_TRUE(out->is_reply);
  ASSERT_EQ(out->entries.size(), 2u);
  EXPECT_EQ(out->entries[0].id, 1u);
  EXPECT_EQ(out->entries[1].values, (Point{10, 20, 30}));
  EXPECT_EQ(out->entries[1].coord, (CellCoord{1, 2, 3}));
  EXPECT_EQ(out->entries[1].age, 4u);
}

TEST(WireCodec, VicinityRoundTrip) {
  VicinityExchangeMsg m;
  m.is_reply = false;
  m.entries = {sample_descriptor(9)};
  auto out = round_trip(m);
  ASSERT_NE(out, nullptr);
  EXPECT_FALSE(out->is_reply);
  EXPECT_EQ(out->entries.size(), 1u);
}

TEST(WireCodec, QueryRoundTrip) {
  QueryMsg m;
  m.id = 0xABCDEF0012345678ULL;
  m.reply_to = 17;
  m.origin = 3;
  m.sigma = 50;
  m.level = -1;
  m.dims_mask = 0b10110;
  m.query = RangeQuery::any(5)
                .with(0, 40, std::nullopt)
                .with(2, std::nullopt, 60)
                .with(4, 7, 9);
  m.query.with_dynamic(1, 100, 200);
  auto out = round_trip(m);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->id, m.id);
  EXPECT_EQ(out->reply_to, 17u);
  EXPECT_EQ(out->origin, 3u);
  EXPECT_EQ(out->sigma, 50u);
  EXPECT_EQ(out->level, -1);
  EXPECT_EQ(out->dims_mask, 0b10110u);
  EXPECT_EQ(out->query, m.query);
}

TEST(WireCodec, QuerySigmaInfinityRoundTrip) {
  QueryMsg m;
  m.sigma = kNoSigma;
  m.level = 3;
  m.query = RangeQuery::any(2);
  auto out = round_trip(m);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->sigma, kNoSigma);
  EXPECT_EQ(out->level, 3);
}

TEST(WireCodec, ReplyRoundTrip) {
  ReplyMsg m;
  m.id = 99;
  m.complete = true;
  m.matching = {{5, {1, 2}}, {6, {3, 4}}};
  auto out = round_trip(m);
  ASSERT_NE(out, nullptr);
  EXPECT_TRUE(out->complete);
  ASSERT_EQ(out->matching.size(), 2u);
  EXPECT_EQ(out->matching[1].id, 6u);
  EXPECT_EQ(out->matching[1].values, (Point{3, 4}));
}

TEST(WireCodec, ReplyIncompleteRoundTrip) {
  ReplyMsg m;
  m.id = 100;
  m.complete = false;
  m.matching = {{5, {1, 2}}};
  auto out = round_trip(m);
  ASSERT_NE(out, nullptr);
  EXPECT_FALSE(out->complete);
}

TEST(WireCodec, ReplyCompleteFlagMustBeCanonical) {
  // The flag is a strict 0/1 byte on the wire; any other value is a
  // malformed frame, not a silently-truthy bool.
  ReplyMsg m;
  m.id = 7;
  m.complete = true;
  auto bytes = encode(m);
  ASSERT_GT(bytes.size(), 10u);
  EXPECT_EQ(bytes[9], 1u);  // tag(1) + id(8), then the flag
  bytes[9] = 2;
  EXPECT_EQ(decode(bytes), nullptr);
}

TEST(WireCodec, EmptyReplyRoundTrip) {
  ReplyMsg m;
  m.id = 1;
  auto out = round_trip(m);
  ASSERT_NE(out, nullptr);
  EXPECT_TRUE(out->matching.empty());
}

TEST(WireCodec, ProgressRoundTrip) {
  ProgressMsg m;
  m.id = 0x1122334455667788ULL;
  auto out = round_trip(m);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->id, m.id);
}

TEST(WireCodec, DhtPutRoundTrip) {
  DhtPutMsg m;
  m.key = 0xFEED;
  m.record = {12, {7, 8, 9}};
  auto out = round_trip(m);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->key, 0xFEEDu);
  EXPECT_EQ(out->record.node, 12u);
  EXPECT_EQ(out->record.values, (Point{7, 8, 9}));
}

TEST(WireCodec, DhtGetRoundTrip) {
  DhtGetMsg m;
  m.key = 5;
  m.origin = 77;
  m.request_id = 31337;
  auto out = round_trip(m);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->origin, 77u);
  EXPECT_EQ(out->request_id, 31337u);
}

TEST(WireCodec, DhtRecordsRoundTrip) {
  DhtRecordsMsg m;
  m.request_id = 8;
  m.key = 9;
  m.records = {{1, {2}}, {3, {4}}};
  auto out = round_trip(m);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->records.size(), 2u);
}

// ---- robustness ------------------------------------------------------------

TEST(WireCodec, UnknownKindRejected) {
  std::vector<std::uint8_t> bytes{0xEE, 1, 2, 3};
  EXPECT_EQ(decode(bytes), nullptr);
}

TEST(WireCodec, EmptyInputRejected) {
  EXPECT_EQ(decode(nullptr, 0), nullptr);
}

TEST(WireCodec, TrailingGarbageRejected) {
  ProgressMsg m;
  m.id = 1;
  auto bytes = encode(m);
  bytes.push_back(0x00);
  EXPECT_EQ(decode(bytes), nullptr);
}

TEST(WireCodec, EveryTruncationFailsCleanly) {
  // Exhaustive prefix truncation of a composite message: every prefix must
  // decode to nullptr (and never crash or over-read).
  QueryMsg m;
  m.id = 42;
  m.sigma = 50;
  m.level = 2;
  m.dims_mask = 0b11111;
  m.query = RangeQuery::any(5).with(1, 10, 20);
  m.query.with_dynamic(0, 1, 2);
  auto bytes = encode(m);
  ASSERT_GT(bytes.size(), 4u);
  for (std::size_t len = 0; len < bytes.size(); ++len)
    EXPECT_EQ(decode(bytes.data(), len), nullptr) << "prefix " << len;
}

TEST(WireCodec, RandomBytesNeverCrash) {
  Rng rng(1234);
  for (int trial = 0; trial < 3000; ++trial) {
    std::vector<std::uint8_t> junk(rng.below(64));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.below(256));
    // Any outcome is fine except UB; decode must be total.
    (void)decode(junk);
  }
  SUCCEED();
}

TEST(WireCodec, MutatedMessagesNeverCrash) {
  // Single-byte mutations of a valid frame: decode must either fail or
  // produce SOME message, never crash.
  ReplyMsg m;
  m.id = 5;
  m.matching = {{1, {10, 20}}, {2, {30, 40}}};
  auto bytes = encode(m);
  Rng rng(77);
  for (int trial = 0; trial < 2000; ++trial) {
    auto copy = bytes;
    copy[rng.index(copy.size())] = static_cast<std::uint8_t>(rng.below(256));
    (void)decode(copy);
  }
  SUCCEED();
}

// ---- randomized per-kind round-trip property --------------------------------
//
// For EVERY registered wire::Kind: decode(encode(m)) must reproduce all
// fields, and the codec-derived wire_size() must equal the encoded frame
// length exactly — both on the original (lazily computed via the counting
// writer) and on the decoded copy (stamped from the arriving frame).

constexpr Kind kAllKinds[] = {
    Kind::kCyclonRequest, Kind::kCyclonReply,  Kind::kVicinityRequest,
    Kind::kVicinityReply, Kind::kQuery,        Kind::kReply,
    Kind::kProgress,      Kind::kDhtPut,       Kind::kDhtGet,
    Kind::kDhtRecords,    Kind::kFloodQuery,   Kind::kFloodHit,
    Kind::kSliceRequest,  Kind::kSliceReply,
};

Point rand_point(Rng& rng) {
  Point p(rng.below(6));
  for (auto& v : p) v = rng.next();
  return p;
}

CellCoord rand_coord(Rng& rng) {
  CellCoord c(rng.below(6));
  for (auto& i : c) i = static_cast<CellIndex>(rng.below(1u << 20));
  return c;
}

PeerDescriptor rand_descriptor(Rng& rng) {
  return PeerDescriptor{static_cast<NodeId>(rng.below(100'000)),
                        rand_point(rng), rand_coord(rng),
                        static_cast<std::uint32_t>(rng.below(500))};
}

std::vector<PeerDescriptor> rand_descriptors(Rng& rng) {
  std::vector<PeerDescriptor> v(rng.below(10));
  for (auto& d : v) d = rand_descriptor(rng);
  return v;
}

RangeQuery rand_query(Rng& rng) {
  int dims = 1 + static_cast<int>(rng.below(8));
  auto q = RangeQuery::any(dims);
  for (int d = 0; d < dims; ++d) {
    std::optional<std::uint64_t> lo, hi;
    if (rng.below(2)) lo = rng.below(1000);
    if (rng.below(2)) hi = (lo ? *lo : 0) + rng.below(1000);
    q.with(d, lo, hi);
  }
  std::uint64_t filters = rng.below(3);
  for (std::uint64_t i = 0; i < filters; ++i)
    q.with_dynamic(rng.below(static_cast<std::uint64_t>(dims)),
                   rng.below(50), 50 + rng.below(50));
  return q;
}

MatchRecord rand_record(Rng& rng) {
  return MatchRecord{static_cast<NodeId>(rng.below(100'000)), rand_point(rng)};
}

ResourceRecord rand_resource(Rng& rng) {
  return ResourceRecord{static_cast<NodeId>(rng.below(100'000)),
                        rand_point(rng)};
}

double rand_f64(Rng& rng) {
  return static_cast<double>(rng.below(1'000'000'000)) / 997.0;
}

MessagePtr make_random(Kind k, Rng& rng) {
  switch (k) {
    case Kind::kCyclonRequest:
    case Kind::kCyclonReply: {
      auto m = std::make_unique<CyclonShuffleMsg>();
      m->is_reply = k == Kind::kCyclonReply;
      m->entries = rand_descriptors(rng);
      return m;
    }
    case Kind::kVicinityRequest:
    case Kind::kVicinityReply: {
      auto m = std::make_unique<VicinityExchangeMsg>();
      m->is_reply = k == Kind::kVicinityReply;
      m->entries = rand_descriptors(rng);
      return m;
    }
    case Kind::kQuery: {
      auto m = std::make_unique<QueryMsg>();
      m->id = rng.next();
      m->reply_to = static_cast<NodeId>(rng.below(100'000));
      m->origin = static_cast<NodeId>(rng.below(100'000));
      m->sigma = rng.below(4) == 0 ? kNoSigma
                                   : static_cast<std::uint32_t>(rng.below(256));
      m->level = static_cast<int>(rng.below(12)) - 1;  // [-1, 10]
      m->dims_mask = static_cast<std::uint32_t>(rng.next());
      m->query = rand_query(rng);
      return m;
    }
    case Kind::kReply: {
      auto m = std::make_unique<ReplyMsg>();
      m->id = rng.next();
      m->complete = rng.below(2) == 1;
      m->matching.resize(rng.below(8));
      for (auto& rec : m->matching) rec = rand_record(rng);
      return m;
    }
    case Kind::kProgress: {
      auto m = std::make_unique<ProgressMsg>();
      m->id = rng.next();
      return m;
    }
    case Kind::kDhtPut: {
      auto m = std::make_unique<DhtPutMsg>();
      m->key = rng.next();
      m->record = rand_resource(rng);
      return m;
    }
    case Kind::kDhtGet: {
      auto m = std::make_unique<DhtGetMsg>();
      m->key = rng.next();
      m->origin = static_cast<NodeId>(rng.below(100'000));
      m->request_id = rng.next();
      return m;
    }
    case Kind::kDhtRecords: {
      auto m = std::make_unique<DhtRecordsMsg>();
      m->request_id = rng.next();
      m->key = rng.next();
      m->records.resize(rng.below(8));
      for (auto& rec : m->records) rec = rand_resource(rng);
      return m;
    }
    case Kind::kFloodQuery: {
      auto m = std::make_unique<FloodQueryMsg>();
      m->id = rng.next();
      m->origin = static_cast<NodeId>(rng.below(100'000));
      m->ttl = static_cast<int>(rng.below(16));
      m->query = rand_query(rng);
      return m;
    }
    case Kind::kFloodHit: {
      auto m = std::make_unique<FloodHitMsg>();
      m->id = rng.next();
      m->match = rand_record(rng);
      return m;
    }
    case Kind::kSliceRequest:
    case Kind::kSliceReply: {
      auto m = std::make_unique<SliceExchangeMsg>();
      m->is_reply = k == Kind::kSliceReply;
      m->attribute = rand_f64(rng);
      m->slice_value = rand_f64(rng);
      m->swapped = rng.below(2) == 1;
      return m;
    }
    default:
      ADD_FAILURE() << "no generator for kind " << static_cast<int>(k);
      return nullptr;
  }
}

void expect_descriptor_eq(const PeerDescriptor& a, const PeerDescriptor& b) {
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(a.age, b.age);
  EXPECT_EQ(a.values, b.values);
  EXPECT_EQ(a.coord, b.coord);
}

void expect_same(const Message& a, const Message& b) {
  ASSERT_EQ(a.kind(), b.kind());
  switch (a.kind()) {
    case Kind::kCyclonRequest:
    case Kind::kCyclonReply: {
      const auto& x = static_cast<const CyclonShuffleMsg&>(a);
      const auto& y = static_cast<const CyclonShuffleMsg&>(b);
      EXPECT_EQ(x.is_reply, y.is_reply);
      ASSERT_EQ(x.entries.size(), y.entries.size());
      for (std::size_t i = 0; i < x.entries.size(); ++i)
        expect_descriptor_eq(x.entries[i], y.entries[i]);
      return;
    }
    case Kind::kVicinityRequest:
    case Kind::kVicinityReply: {
      const auto& x = static_cast<const VicinityExchangeMsg&>(a);
      const auto& y = static_cast<const VicinityExchangeMsg&>(b);
      EXPECT_EQ(x.is_reply, y.is_reply);
      ASSERT_EQ(x.entries.size(), y.entries.size());
      for (std::size_t i = 0; i < x.entries.size(); ++i)
        expect_descriptor_eq(x.entries[i], y.entries[i]);
      return;
    }
    case Kind::kQuery: {
      const auto& x = static_cast<const QueryMsg&>(a);
      const auto& y = static_cast<const QueryMsg&>(b);
      EXPECT_EQ(x.id, y.id);
      EXPECT_EQ(x.reply_to, y.reply_to);
      EXPECT_EQ(x.origin, y.origin);
      EXPECT_EQ(x.sigma, y.sigma);
      EXPECT_EQ(x.level, y.level);
      EXPECT_EQ(x.dims_mask, y.dims_mask);
      EXPECT_EQ(x.query, y.query);
      return;
    }
    case Kind::kReply: {
      const auto& x = static_cast<const ReplyMsg&>(a);
      const auto& y = static_cast<const ReplyMsg&>(b);
      EXPECT_EQ(x.id, y.id);
      EXPECT_EQ(x.complete, y.complete);
      ASSERT_EQ(x.matching.size(), y.matching.size());
      for (std::size_t i = 0; i < x.matching.size(); ++i) {
        EXPECT_EQ(x.matching[i].id, y.matching[i].id);
        EXPECT_EQ(x.matching[i].values, y.matching[i].values);
      }
      return;
    }
    case Kind::kProgress:
      EXPECT_EQ(static_cast<const ProgressMsg&>(a).id,
                static_cast<const ProgressMsg&>(b).id);
      return;
    case Kind::kDhtPut: {
      const auto& x = static_cast<const DhtPutMsg&>(a);
      const auto& y = static_cast<const DhtPutMsg&>(b);
      EXPECT_EQ(x.key, y.key);
      EXPECT_EQ(x.record.node, y.record.node);
      EXPECT_EQ(x.record.values, y.record.values);
      return;
    }
    case Kind::kDhtGet: {
      const auto& x = static_cast<const DhtGetMsg&>(a);
      const auto& y = static_cast<const DhtGetMsg&>(b);
      EXPECT_EQ(x.key, y.key);
      EXPECT_EQ(x.origin, y.origin);
      EXPECT_EQ(x.request_id, y.request_id);
      return;
    }
    case Kind::kDhtRecords: {
      const auto& x = static_cast<const DhtRecordsMsg&>(a);
      const auto& y = static_cast<const DhtRecordsMsg&>(b);
      EXPECT_EQ(x.request_id, y.request_id);
      EXPECT_EQ(x.key, y.key);
      ASSERT_EQ(x.records.size(), y.records.size());
      for (std::size_t i = 0; i < x.records.size(); ++i) {
        EXPECT_EQ(x.records[i].node, y.records[i].node);
        EXPECT_EQ(x.records[i].values, y.records[i].values);
      }
      return;
    }
    case Kind::kFloodQuery: {
      const auto& x = static_cast<const FloodQueryMsg&>(a);
      const auto& y = static_cast<const FloodQueryMsg&>(b);
      EXPECT_EQ(x.id, y.id);
      EXPECT_EQ(x.origin, y.origin);
      EXPECT_EQ(x.ttl, y.ttl);
      EXPECT_EQ(x.query, y.query);
      return;
    }
    case Kind::kFloodHit: {
      const auto& x = static_cast<const FloodHitMsg&>(a);
      const auto& y = static_cast<const FloodHitMsg&>(b);
      EXPECT_EQ(x.id, y.id);
      EXPECT_EQ(x.match.id, y.match.id);
      EXPECT_EQ(x.match.values, y.match.values);
      return;
    }
    case Kind::kSliceRequest:
    case Kind::kSliceReply: {
      const auto& x = static_cast<const SliceExchangeMsg&>(a);
      const auto& y = static_cast<const SliceExchangeMsg&>(b);
      EXPECT_EQ(x.is_reply, y.is_reply);
      EXPECT_EQ(x.attribute, y.attribute);
      EXPECT_EQ(x.slice_value, y.slice_value);
      EXPECT_EQ(x.swapped, y.swapped);
      return;
    }
    default:
      FAIL() << "no comparator for kind " << static_cast<int>(a.kind());
  }
}

TEST(WireProperty, EveryKindRoundTripsRandomizedMessages) {
  // This test pins the legacy frame shape (tag byte first); the delta form
  // has its own property suite in delta_codec_test.cpp. Force legacy so the
  // assertions hold when ctest runs under ARES_WIRE_DELTA=1.
  ScopedDeltaMode legacy(false);
  Rng rng(20260807);
  for (int trial = 0; trial < 100; ++trial) {
    for (Kind k : kAllKinds) {
      SCOPED_TRACE("kind " + std::to_string(static_cast<int>(k)) +
                   " trial " + std::to_string(trial));
      MessagePtr m = make_random(k, rng);
      ASSERT_NE(m, nullptr);
      ASSERT_EQ(m->kind(), k);
      auto bytes = encode(*m);
      ASSERT_FALSE(bytes.empty());
      EXPECT_EQ(bytes[0], static_cast<std::uint8_t>(k));  // frame = tag + body
      // Codec-derived size: the lazily computed cache equals the frame
      // length exactly (it IS the frame length, via the counting writer).
      EXPECT_EQ(m->wire_size(), bytes.size());
      MessagePtr out = decode(bytes);
      ASSERT_NE(out, nullptr);
      ASSERT_EQ(out->kind(), k);
      // decode() stamps the arriving frame length into the cache.
      EXPECT_EQ(out->wire_size(), bytes.size());
      expect_same(*m, *out);
    }
  }
}

TEST(WireProperty, SizeIsStableAcrossRecode) {
  // recode() (the ARES_WIRE=1 boundary path) must agree with wire_size()
  // on both sides: no message changes size by crossing the wire.
  Rng rng(99);
  for (Kind k : kAllKinds) {
    MessagePtr m = make_random(k, rng);
    ASSERT_NE(m, nullptr);
    auto rc = recode(*m);
    ASSERT_NE(rc.msg, nullptr) << "kind " << static_cast<int>(k);
    EXPECT_TRUE(rc.encode_ok);
    EXPECT_EQ(m->wire_size(), rc.msg->wire_size());
  }
}

}  // namespace
}  // namespace ares::wire
