#include "wire/codecs.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace ares::wire {
namespace {

// ---- buffer primitives ----------------------------------------------------

TEST(WireBuffer, FixedWidthRoundTrip) {
  Writer w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  Reader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.at_end());
}

TEST(WireBuffer, VarintRoundTripSweep) {
  for (std::uint64_t v :
       {0ull, 1ull, 127ull, 128ull, 300ull, 16383ull, 16384ull,
        0xFFFFFFFFull, ~0ull}) {
    Writer w;
    w.varint(v);
    Reader r(w.bytes());
    EXPECT_EQ(r.varint(), v);
    EXPECT_TRUE(r.ok());
  }
}

TEST(WireBuffer, VarintCompactness) {
  Writer w;
  w.varint(5);
  EXPECT_EQ(w.size(), 1u);
  Writer w2;
  w2.varint(300);
  EXPECT_EQ(w2.size(), 2u);
}

TEST(WireBuffer, OptionalRoundTrip) {
  Writer w;
  w.opt_u64(std::nullopt);
  w.opt_u64(42);
  Reader r(w.bytes());
  EXPECT_EQ(r.opt_u64(), std::nullopt);
  EXPECT_EQ(r.opt_u64(), std::optional<std::uint64_t>(42));
  EXPECT_TRUE(r.ok());
}

TEST(WireBuffer, StringRoundTrip) {
  Writer w;
  w.str("hello world");
  w.str("");
  std::string with_nul("a\0b", 3);
  w.str(with_nul);
  Reader r(w.bytes());
  EXPECT_EQ(r.str(), "hello world");
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.str(), with_nul);  // embedded NULs survive
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.at_end());
}

TEST(WireBuffer, TruncatedReadSetsError) {
  Writer w;
  w.u16(7);
  Reader r(w.bytes());
  r.u32();  // more than available
  EXPECT_FALSE(r.ok());
}

TEST(WireBuffer, StickyErrorNeverRecovers) {
  Reader r(nullptr, 0);
  r.u8();
  EXPECT_FALSE(r.ok());
  // Subsequent reads stay failed and return zero.
  EXPECT_EQ(r.u64(), 0u);
  EXPECT_FALSE(r.ok());
}

TEST(WireBuffer, OversizedVarintRejected) {
  Writer w;
  for (int i = 0; i < 11; ++i) w.u8(0x80);  // continuation forever
  Reader r(w.bytes());
  r.varint();
  EXPECT_FALSE(r.ok());
}

TEST(WireBuffer, BadPresenceByteRejected) {
  Writer w;
  w.u8(7);  // presence must be 0/1
  Reader r(w.bytes());
  r.opt_u64();
  EXPECT_FALSE(r.ok());
}

TEST(WireBuffer, CountBombRejected) {
  Writer w;
  w.varint(1'000'000);  // claims a million elements in a 3-byte buffer
  Reader r(w.bytes());
  r.count(4);
  EXPECT_FALSE(r.ok());
}

// ---- message codecs ---------------------------------------------------------

PeerDescriptor sample_descriptor(NodeId id) {
  return PeerDescriptor{id, {10, 20, 30}, {1, 2, 3}, 4};
}

template <typename T>
std::unique_ptr<T> round_trip(const T& msg) {
  auto bytes = encode(msg);
  EXPECT_FALSE(bytes.empty());
  MessagePtr decoded = decode(bytes);
  EXPECT_NE(decoded, nullptr);
  auto* typed = dynamic_cast<T*>(decoded.get());
  EXPECT_NE(typed, nullptr);
  if (typed == nullptr) return nullptr;
  decoded.release();
  return std::unique_ptr<T>(typed);
}

TEST(WireCodec, CyclonRoundTrip) {
  CyclonShuffleMsg m;
  m.is_reply = true;
  m.entries = {sample_descriptor(1), sample_descriptor(2)};
  auto out = round_trip(m);
  ASSERT_NE(out, nullptr);
  EXPECT_TRUE(out->is_reply);
  ASSERT_EQ(out->entries.size(), 2u);
  EXPECT_EQ(out->entries[0].id, 1u);
  EXPECT_EQ(out->entries[1].values, (Point{10, 20, 30}));
  EXPECT_EQ(out->entries[1].coord, (CellCoord{1, 2, 3}));
  EXPECT_EQ(out->entries[1].age, 4u);
}

TEST(WireCodec, VicinityRoundTrip) {
  VicinityExchangeMsg m;
  m.is_reply = false;
  m.entries = {sample_descriptor(9)};
  auto out = round_trip(m);
  ASSERT_NE(out, nullptr);
  EXPECT_FALSE(out->is_reply);
  EXPECT_EQ(out->entries.size(), 1u);
}

TEST(WireCodec, QueryRoundTrip) {
  QueryMsg m;
  m.id = 0xABCDEF0012345678ULL;
  m.reply_to = 17;
  m.origin = 3;
  m.sigma = 50;
  m.level = -1;
  m.dims_mask = 0b10110;
  m.query = RangeQuery::any(5)
                .with(0, 40, std::nullopt)
                .with(2, std::nullopt, 60)
                .with(4, 7, 9);
  m.query.with_dynamic(1, 100, 200);
  auto out = round_trip(m);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->id, m.id);
  EXPECT_EQ(out->reply_to, 17u);
  EXPECT_EQ(out->origin, 3u);
  EXPECT_EQ(out->sigma, 50u);
  EXPECT_EQ(out->level, -1);
  EXPECT_EQ(out->dims_mask, 0b10110u);
  EXPECT_EQ(out->query, m.query);
}

TEST(WireCodec, QuerySigmaInfinityRoundTrip) {
  QueryMsg m;
  m.sigma = kNoSigma;
  m.level = 3;
  m.query = RangeQuery::any(2);
  auto out = round_trip(m);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->sigma, kNoSigma);
  EXPECT_EQ(out->level, 3);
}

TEST(WireCodec, ReplyRoundTrip) {
  ReplyMsg m;
  m.id = 99;
  m.matching = {{5, {1, 2}}, {6, {3, 4}}};
  auto out = round_trip(m);
  ASSERT_NE(out, nullptr);
  ASSERT_EQ(out->matching.size(), 2u);
  EXPECT_EQ(out->matching[1].id, 6u);
  EXPECT_EQ(out->matching[1].values, (Point{3, 4}));
}

TEST(WireCodec, EmptyReplyRoundTrip) {
  ReplyMsg m;
  m.id = 1;
  auto out = round_trip(m);
  ASSERT_NE(out, nullptr);
  EXPECT_TRUE(out->matching.empty());
}

TEST(WireCodec, ProgressRoundTrip) {
  ProgressMsg m;
  m.id = 0x1122334455667788ULL;
  auto out = round_trip(m);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->id, m.id);
}

TEST(WireCodec, DhtPutRoundTrip) {
  DhtPutMsg m;
  m.key = 0xFEED;
  m.record = {12, {7, 8, 9}};
  auto out = round_trip(m);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->key, 0xFEEDu);
  EXPECT_EQ(out->record.node, 12u);
  EXPECT_EQ(out->record.values, (Point{7, 8, 9}));
}

TEST(WireCodec, DhtGetRoundTrip) {
  DhtGetMsg m;
  m.key = 5;
  m.origin = 77;
  m.request_id = 31337;
  auto out = round_trip(m);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->origin, 77u);
  EXPECT_EQ(out->request_id, 31337u);
}

TEST(WireCodec, DhtRecordsRoundTrip) {
  DhtRecordsMsg m;
  m.request_id = 8;
  m.key = 9;
  m.records = {{1, {2}}, {3, {4}}};
  auto out = round_trip(m);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->records.size(), 2u);
}

// ---- robustness ------------------------------------------------------------

TEST(WireCodec, UnknownKindRejected) {
  std::vector<std::uint8_t> bytes{0xEE, 1, 2, 3};
  EXPECT_EQ(decode(bytes), nullptr);
}

TEST(WireCodec, EmptyInputRejected) {
  EXPECT_EQ(decode(nullptr, 0), nullptr);
}

TEST(WireCodec, TrailingGarbageRejected) {
  ProgressMsg m;
  m.id = 1;
  auto bytes = encode(m);
  bytes.push_back(0x00);
  EXPECT_EQ(decode(bytes), nullptr);
}

TEST(WireCodec, EveryTruncationFailsCleanly) {
  // Exhaustive prefix truncation of a composite message: every prefix must
  // decode to nullptr (and never crash or over-read).
  QueryMsg m;
  m.id = 42;
  m.sigma = 50;
  m.level = 2;
  m.dims_mask = 0b11111;
  m.query = RangeQuery::any(5).with(1, 10, 20);
  m.query.with_dynamic(0, 1, 2);
  auto bytes = encode(m);
  ASSERT_GT(bytes.size(), 4u);
  for (std::size_t len = 0; len < bytes.size(); ++len)
    EXPECT_EQ(decode(bytes.data(), len), nullptr) << "prefix " << len;
}

TEST(WireCodec, RandomBytesNeverCrash) {
  Rng rng(1234);
  for (int trial = 0; trial < 3000; ++trial) {
    std::vector<std::uint8_t> junk(rng.below(64));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.below(256));
    // Any outcome is fine except UB; decode must be total.
    (void)decode(junk);
  }
  SUCCEED();
}

TEST(WireCodec, MutatedMessagesNeverCrash) {
  // Single-byte mutations of a valid frame: decode must either fail or
  // produce SOME message, never crash.
  ReplyMsg m;
  m.id = 5;
  m.matching = {{1, {10, 20}}, {2, {30, 40}}};
  auto bytes = encode(m);
  Rng rng(77);
  for (int trial = 0; trial < 2000; ++trial) {
    auto copy = bytes;
    copy[rng.index(copy.size())] = static_cast<std::uint8_t>(rng.below(256));
    (void)decode(copy);
  }
  SUCCEED();
}

TEST(WireCodec, WireSizeEstimatesAreSane) {
  // Message::wire_size() drives the traffic accounting; it should be within
  // a small factor of the real encoded size.
  CyclonShuffleMsg c;
  for (NodeId i = 0; i < 8; ++i) c.entries.push_back(sample_descriptor(i));
  auto actual = static_cast<double>(encode(c).size());
  auto estimate = static_cast<double>(c.wire_size());
  EXPECT_GT(estimate, actual / 3);
  EXPECT_LT(estimate, actual * 3);

  QueryMsg q;
  q.query = RangeQuery::any(5).with(0, 1, 2);
  auto q_actual = static_cast<double>(encode(q).size());
  auto q_estimate = static_cast<double>(q.wire_size());
  EXPECT_GT(q_estimate, q_actual / 3);
  EXPECT_LT(q_estimate, q_actual * 3);
}

}  // namespace
}  // namespace ares::wire
