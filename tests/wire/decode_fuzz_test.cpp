/// Deterministic decode-hardening fuzz: the frame parser must be total.
/// For corpora derived from valid frames of every wire::Kind — prefix
/// truncations, single-bit flips, random byte mutations, planted count
/// bombs — and for pure random buffers, decode() must return nullptr or a
/// valid message. It must never crash, over-read (ASan/UBSan CI job runs
/// this suite), or allocate absurd amounts from attacker-chosen counts.
///
/// When a mutated frame DOES decode, the result must still uphold the codec
/// invariants: its kind matches the tag and its cached wire_size() equals
/// the frame length it arrived in.

#include "wire/codecs.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"

namespace ares::wire {
namespace {

PeerDescriptor fuzz_descriptor(Rng& rng) {
  PeerDescriptor d;
  d.id = static_cast<NodeId>(rng.below(1000));
  d.age = static_cast<std::uint32_t>(rng.below(100));
  d.values.resize(rng.below(5));
  for (auto& v : d.values) v = rng.next();
  d.coord.resize(rng.below(5));
  for (auto& c : d.coord) c = static_cast<CellIndex>(rng.below(64));
  return d;
}

RangeQuery fuzz_query(Rng& rng) {
  int dims = 1 + static_cast<int>(rng.below(5));
  auto q = RangeQuery::any(dims);
  for (int d = 0; d < dims; ++d)
    if (rng.below(2)) q.with(d, rng.below(100), 100 + rng.below(100));
  return q;
}

/// One valid frame per registered kind, with randomized field content.
std::vector<std::vector<std::uint8_t>> corpus(Rng& rng) {
  std::vector<std::vector<std::uint8_t>> frames;
  auto add = [&](const Message& m) {
    auto bytes = encode(m);
    EXPECT_FALSE(bytes.empty()) << m.type_name();
    frames.push_back(std::move(bytes));
  };

  for (bool reply : {false, true}) {
    CyclonShuffleMsg c;
    c.is_reply = reply;
    c.entries = {fuzz_descriptor(rng), fuzz_descriptor(rng)};
    add(c);
    VicinityExchangeMsg v;
    v.is_reply = reply;
    v.entries = {fuzz_descriptor(rng)};
    add(v);
    SliceExchangeMsg s;
    s.is_reply = reply;
    s.attribute = 0.25;
    s.slice_value = 0.75;
    s.swapped = reply;
    add(s);
  }

  QueryMsg q;
  q.id = rng.next();
  q.reply_to = 1;
  q.origin = 2;
  q.sigma = 50;
  q.level = 3;
  q.dims_mask = 0b1011;
  q.query = fuzz_query(rng);
  q.query.with_dynamic(0, 1, 2);
  add(q);

  ReplyMsg r;
  r.id = rng.next();
  r.matching = {{3, {1, 2, 3}}, {4, {4, 5, 6}}};
  add(r);

  ProgressMsg p;
  p.id = rng.next();
  add(p);

  DhtPutMsg put;
  put.key = rng.next();
  put.record = {7, {8, 9}};
  add(put);

  DhtGetMsg get;
  get.key = rng.next();
  get.origin = 11;
  get.request_id = rng.next();
  add(get);

  DhtRecordsMsg recs;
  recs.request_id = rng.next();
  recs.key = rng.next();
  recs.records = {{12, {13}}, {14, {15}}};
  add(recs);

  FloodQueryMsg fq;
  fq.id = rng.next();
  fq.origin = 21;
  fq.ttl = 4;
  fq.query = fuzz_query(rng);
  add(fq);

  FloodHitMsg fh;
  fh.id = rng.next();
  fh.match = {22, {23, 24}};
  add(fh);

  return frames;
}

/// decode() must be total; on success the codec invariants must hold. Under
/// ARES_WIRE_DELTA=1 a mutation can land on the delta-escape prologue
/// ([0x00][version][kind], see delta_codec_test.cpp), where the kind tag
/// sits at byte 2 instead of byte 0.
void expect_total(const std::vector<std::uint8_t>& bytes) {
  MessagePtr m = decode(bytes);
  if (m == nullptr) return;
  ASSERT_FALSE(bytes.empty());
  if (bytes[0] == kDeltaEscape) {
    ASSERT_GE(bytes.size(), 3u);
    EXPECT_EQ(static_cast<std::uint8_t>(m->kind()), bytes[2]);
  } else {
    EXPECT_EQ(static_cast<std::uint8_t>(m->kind()), bytes[0]);
  }
  EXPECT_EQ(m->wire_size(), bytes.size());
}

TEST(DecodeFuzz, EveryPrefixTruncationOfEveryKindFailsCleanly) {
  Rng rng(0xF0221);
  for (const auto& frame : corpus(rng)) {
    // A strict prefix is missing trailing fields (or the end-of-frame check
    // trips); none may decode.
    for (std::size_t len = 0; len < frame.size(); ++len)
      EXPECT_EQ(decode(frame.data(), len), nullptr)
          << "kind " << int(frame[0]) << " prefix " << len;
  }
}

TEST(DecodeFuzz, SingleBitFlipsNeverCrash) {
  Rng rng(0xF0222);
  for (const auto& frame : corpus(rng)) {
    for (std::size_t byte = 0; byte < frame.size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        auto copy = frame;
        copy[byte] ^= static_cast<std::uint8_t>(1u << bit);
        expect_total(copy);
      }
    }
  }
}

TEST(DecodeFuzz, RandomMutationsNeverCrash) {
  Rng rng(0xF0223);
  auto frames = corpus(rng);
  for (int trial = 0; trial < 4000; ++trial) {
    auto copy = frames[rng.index(frames.size())];
    // 1-4 random byte substitutions, plus occasional grow/shrink.
    std::uint64_t edits = 1 + rng.below(4);
    for (std::uint64_t e = 0; e < edits && !copy.empty(); ++e)
      copy[rng.index(copy.size())] = static_cast<std::uint8_t>(rng.below(256));
    if (rng.below(4) == 0) copy.push_back(static_cast<std::uint8_t>(rng.below(256)));
    if (rng.below(4) == 0 && !copy.empty()) copy.pop_back();
    expect_total(copy);
  }
}

TEST(DecodeFuzz, PlantedCountBombsAreRejectedWithoutAllocating) {
  Rng rng(0xF0224);
  // Splice a maximal varint where each frame's first count-ish field lives
  // (right after the fixed header bytes); decode must reject via the
  // remaining-bytes bound, not attempt a giant resize.
  for (const auto& frame : corpus(rng)) {
    for (std::size_t pos = 1; pos < std::min<std::size_t>(frame.size(), 24); ++pos) {
      auto copy = frame;
      static constexpr std::uint8_t kHugeVarint[] = {0xFF, 0xFF, 0xFF, 0xFF,
                                                     0xFF, 0xFF, 0xFF, 0x7F};
      copy.insert(copy.begin() + static_cast<std::ptrdiff_t>(pos),
                  std::begin(kHugeVarint), std::end(kHugeVarint));
      expect_total(copy);
    }
  }
}

TEST(DecodeFuzz, PureRandomBuffersNeverCrash) {
  Rng rng(0xF0225);
  for (int trial = 0; trial < 6000; ++trial) {
    std::vector<std::uint8_t> junk(rng.below(200));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.below(256));
    // Bias some buffers toward valid tags so bodies actually get parsed.
    if (!junk.empty() && rng.below(2) == 0)
      junk[0] = static_cast<std::uint8_t>(1 + rng.below(14));
    expect_total(junk);
  }
}

}  // namespace
}  // namespace ares::wire
