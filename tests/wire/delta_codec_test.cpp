/// Delta descriptor encoding (docs/PROTOCOL.md §"Delta frames"): gossip
/// exchanges carry a full reference descriptor plus zig-zag varint deltas
/// for the remaining entries, behind the [0x00][version][kind] escape
/// prologue. These tests pin the negotiation rules (legacy decoders reject
/// delta frames; delta decoders accept both encodings), the compression
/// floor the benches gate on, the golden byte layout, and decode totality
/// under adversarial input (the sanitize CI leg runs this suite under
/// ASan/UBSan).

#include "wire/codecs.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"

namespace ares::wire {
namespace {

constexpr Kind kGossipKinds[] = {Kind::kCyclonRequest, Kind::kCyclonReply,
                                 Kind::kVicinityRequest, Kind::kVicinityReply};

constexpr Kind kNonDeltaKinds[] = {
    Kind::kQuery,      Kind::kReply,    Kind::kProgress,  Kind::kDhtPut,
    Kind::kDhtGet,     Kind::kDhtRecords, Kind::kFloodQuery, Kind::kFloodHit,
    Kind::kSliceRequest, Kind::kSliceReply,
};

PeerDescriptor rand_descriptor(Rng& rng, std::size_t dims) {
  PeerDescriptor d;
  d.id = static_cast<NodeId>(rng.below(100'000));
  d.age = static_cast<std::uint32_t>(rng.below(500));
  d.values.resize(dims);
  for (auto& v : d.values) v = rng.next();
  d.coord.resize(dims);
  for (auto& c : d.coord) c = static_cast<CellIndex>(rng.below(1u << 20));
  return d;
}

/// Descriptors the way gossip actually sends them: same dimensionality,
/// values drawn from one bounded attribute range, nearby coords — the
/// correlated shape delta encoding exists for.
std::vector<PeerDescriptor> correlated_descriptors(Rng& rng, std::size_t n,
                                                   std::size_t dims = 5) {
  std::vector<PeerDescriptor> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    PeerDescriptor d;
    d.id = static_cast<NodeId>(rng.below(1000));
    d.age = static_cast<std::uint32_t>(rng.below(20));
    d.values.resize(dims);
    for (auto& val : d.values) val = rng.below(80);
    d.coord.resize(dims);
    for (auto& c : d.coord) c = static_cast<CellIndex>(rng.below(27));
    v.push_back(std::move(d));
  }
  return v;
}

/// Adversarial mix: entries disagree on dimensionality (kFullEntry
/// fallback), hold extreme values (zig-zag wrap), or are empty.
std::vector<PeerDescriptor> hostile_descriptors(Rng& rng) {
  std::vector<PeerDescriptor> v(rng.below(10));
  for (auto& d : v) {
    d = rand_descriptor(rng, rng.below(6));
    if (rng.below(4) == 0) {
      for (auto& val : d.values) val = ~0ull - rng.below(3);
      d.id = 0xFFFFFFFFu;
      d.age = 0xFFFFFFFFu;
    }
  }
  return v;
}

MessagePtr make_gossip(Kind k, std::vector<PeerDescriptor> entries) {
  if (k == Kind::kCyclonRequest || k == Kind::kCyclonReply) {
    auto m = std::make_unique<CyclonShuffleMsg>();
    m->is_reply = k == Kind::kCyclonReply;
    m->entries = std::move(entries);
    return m;
  }
  auto m = std::make_unique<VicinityExchangeMsg>();
  m->is_reply = k == Kind::kVicinityReply;
  m->entries = std::move(entries);
  return m;
}

const std::vector<PeerDescriptor>& entries_of(const Message& m) {
  if (const auto* c = dynamic_cast<const CyclonShuffleMsg*>(&m))
    return c->entries;
  return dynamic_cast<const VicinityExchangeMsg&>(m).entries;
}

void expect_same_gossip(const Message& a, const Message& b) {
  ASSERT_EQ(a.kind(), b.kind());
  const auto& ea = entries_of(a);
  const auto& eb = entries_of(b);
  ASSERT_EQ(ea.size(), eb.size());
  for (std::size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].id, eb[i].id) << "entry " << i;
    EXPECT_EQ(ea[i].age, eb[i].age) << "entry " << i;
    EXPECT_EQ(ea[i].values, eb[i].values) << "entry " << i;
    EXPECT_EQ(ea[i].coord, eb[i].coord) << "entry " << i;
  }
}

std::string to_hex(const std::vector<std::uint8_t>& bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  for (std::uint8_t b : bytes) {
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0xF]);
  }
  return out;
}

std::vector<std::uint8_t> from_hex(const std::string& hex) {
  std::vector<std::uint8_t> out;
  for (std::size_t i = 0; i + 1 < hex.size(); i += 2)
    out.push_back(static_cast<std::uint8_t>(
        std::stoul(hex.substr(i, 2), nullptr, 16)));
  return out;
}

// ---- negotiation ----------------------------------------------------------

TEST(DeltaCodec, ScopedModeNestsAndRestoresAmbientSetting) {
  // Ambient default tracks ARES_WIRE_DELTA (the sanitize CI leg runs this
  // suite with it set), so assert restoration, not a particular default.
  const bool ambient = delta_enabled();
  {
    ScopedDeltaMode delta(true);
    EXPECT_TRUE(delta_enabled());
    {
      ScopedDeltaMode legacy(false);
      EXPECT_FALSE(delta_enabled());
    }
    EXPECT_TRUE(delta_enabled());
  }
  EXPECT_EQ(delta_enabled(), ambient);
}

TEST(DeltaCodec, DeltaFramesCarryTheEscapePrologue) {
  ScopedDeltaMode delta(true);
  Rng rng(1);
  for (Kind k : kGossipKinds) {
    MessagePtr m = make_gossip(k, correlated_descriptors(rng, 4));
    auto bytes = encode(*m);
    ASSERT_GE(bytes.size(), 3u);
    EXPECT_EQ(bytes[0], kDeltaEscape);
    EXPECT_EQ(bytes[1], kDeltaVersion);
    EXPECT_EQ(bytes[2], static_cast<std::uint8_t>(k));
    EXPECT_EQ(m->wire_size(), bytes.size());
  }
}

TEST(DeltaCodec, NonGossipKindsStayLegacyUnderDeltaMode) {
  ScopedDeltaMode delta(true);
  ProgressMsg p;
  p.id = 42;
  auto bytes = encode(p);
  ASSERT_FALSE(bytes.empty());
  EXPECT_EQ(bytes[0], static_cast<std::uint8_t>(Kind::kProgress));
  for (Kind k : kNonDeltaKinds) EXPECT_EQ(find_delta_codec(k), nullptr);
  for (Kind k : kGossipKinds) EXPECT_NE(find_delta_codec(k), nullptr);
}

TEST(DeltaCodec, LegacyDecoderRejectsDeltaFrames) {
  std::vector<std::uint8_t> frame;
  {
    ScopedDeltaMode delta(true);
    Rng rng(2);
    MessagePtr m = make_gossip(Kind::kCyclonRequest, correlated_descriptors(rng, 3));
    frame = encode(*m);
  }
  ASSERT_EQ(frame[0], kDeltaEscape);
  {
    // Delta off: tag 0x00 is kInvalid, no codec — the mixed-version
    // rejection a pre-delta peer performs (metered wire.decode_fail at the
    // transport boundary; see udp_runtime_test).
    ScopedDeltaMode legacy(false);
    EXPECT_EQ(decode(frame), nullptr);
  }
  ScopedDeltaMode delta(true);
  EXPECT_NE(decode(frame), nullptr);
}

TEST(DeltaCodec, DeltaDecoderAcceptsLegacyFrames) {
  Rng rng(3);
  MessagePtr m = make_gossip(Kind::kVicinityReply, correlated_descriptors(rng, 5));
  std::vector<std::uint8_t> legacy;
  {
    ScopedDeltaMode off(false);
    legacy = encode(*m);
  }
  ASSERT_EQ(legacy[0], static_cast<std::uint8_t>(Kind::kVicinityReply));
  ScopedDeltaMode delta(true);
  MessagePtr out = decode(legacy);
  ASSERT_NE(out, nullptr);
  expect_same_gossip(*m, *out);
}

TEST(DeltaCodec, LegacyBytesAreIdenticalWithModeOff) {
  // Figure outputs must be byte-identical with delta off: encoding with the
  // feature compiled in but disabled produces exactly the legacy frame.
  ScopedDeltaMode off(false);
  Rng rng(4);
  MessagePtr m = make_gossip(Kind::kCyclonReply, correlated_descriptors(rng, 4));
  const auto bytes = encode(*m);
  EXPECT_EQ(bytes[0], static_cast<std::uint8_t>(Kind::kCyclonReply));
  EXPECT_EQ(delta_savings(*m), 0u);  // meter is inert when the mode is off
}

// ---- round-trip properties ------------------------------------------------

TEST(DeltaCodecProperty, EveryGossipKindRoundTripsRandomizedMessages) {
  ScopedDeltaMode delta(true);
  Rng rng(20260808);
  for (int trial = 0; trial < 200; ++trial) {
    for (Kind k : kGossipKinds) {
      SCOPED_TRACE("kind " + std::to_string(static_cast<int>(k)) + " trial " +
                   std::to_string(trial));
      const auto entries = trial % 2 == 0
                               ? correlated_descriptors(rng, rng.below(10))
                               : hostile_descriptors(rng);
      MessagePtr m = make_gossip(k, entries);
      auto bytes = encode(*m);
      ASSERT_FALSE(bytes.empty());
      EXPECT_EQ(m->wire_size(), bytes.size());
      MessagePtr out = decode(bytes);
      ASSERT_NE(out, nullptr);
      ASSERT_EQ(out->kind(), k);
      EXPECT_EQ(out->wire_size(), bytes.size());
      expect_same_gossip(*m, *out);
    }
  }
}

TEST(DeltaCodecProperty, SizeBodyMatchesEncodedLength) {
  // encoded_size() must agree with encode() in delta mode exactly as it
  // does in legacy mode: traffic accounting is only as honest as this.
  ScopedDeltaMode delta(true);
  Rng rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    for (Kind k : kGossipKinds) {
      MessagePtr m = make_gossip(k, hostile_descriptors(rng));
      EXPECT_EQ(encoded_size(*m), encode(*m).size());
    }
  }
}

TEST(DeltaCodecProperty, CompressionMeetsTheBenchFloor) {
  // The tentpole: on gossip-shaped exchanges (full view, shared
  // dimensionality, bounded attribute ranges) delta frames must be at
  // least 25% smaller than legacy — this is what the gossip_cost and
  // net_deploy gates measure end to end.
  Rng rng(6);
  for (int trial = 0; trial < 50; ++trial) {
    MessagePtr m = make_gossip(Kind::kCyclonRequest,
                               correlated_descriptors(rng, 6, 5));
    std::size_t legacy = 0;
    {
      ScopedDeltaMode off(false);
      legacy = encode(*m).size();
    }
    ScopedDeltaMode delta(true);
    const std::size_t compressed = encode(*m).size();
    EXPECT_LE(compressed * 4, legacy * 3)
        << "trial " << trial << ": " << compressed << " vs " << legacy;
    EXPECT_EQ(delta_savings(*m), legacy - compressed);
  }
}

TEST(DeltaCodec, MixedDimensionalityFallsBackToFullEntries) {
  ScopedDeltaMode delta(true);
  std::vector<PeerDescriptor> entries;
  entries.push_back({1, Point{10, 20, 30}, CellCoord{1, 2, 3}, 4});
  entries.push_back({2, Point{11, 19}, CellCoord{1, 2}, 5});  // fewer dims
  entries.push_back({3, Point{}, CellCoord{}, 6});            // empty
  entries.push_back({4, Point{12, 21, 29}, CellCoord{1, 2, 4}, 0});
  MessagePtr m = make_gossip(Kind::kVicinityRequest, entries);
  MessagePtr out = decode(encode(*m));
  ASSERT_NE(out, nullptr);
  expect_same_gossip(*m, *out);
}

// ---- golden frames --------------------------------------------------------

// Fixed two-entry exchange: reference descriptor in full, second entry as
// deltas (id +1 zig-zag = 02, age +1 = 02, value bitmap 0b011 with deltas
// +1/-1, coord bitmap 0b100 with delta +1).
std::vector<PeerDescriptor> golden_entries() {
  std::vector<PeerDescriptor> v;
  v.push_back({5, Point{10, 2000, 300000000000ULL}, CellCoord{1, 2, 7}, 0});
  v.push_back({6, Point{11, 1999, 300000000000ULL}, CellCoord{1, 2, 8}, 1});
  return v;
}

const char* const kGoldenCyclonDeltaHex =
    "000101"  // escape, version 1, kind kCyclonRequest
    "02"      // 2 entries
    "0500000000000000"  // ref: id=5 age=0
    "030a00000000000000d00700000000000000b864d94500000003010000000200000007000000"
    "00"      // entry 1: flags = delta
    "0202"    // id +1, age +1 (zig-zag)
    "030201"  // value bitmap 0b011, deltas +1, -1
    "0402";   // coord bitmap 0b100, delta +1

TEST(DeltaGoldenFrames, CyclonRequestDeltaBytesPinned) {
  ScopedDeltaMode delta(true);
  MessagePtr m = make_gossip(Kind::kCyclonRequest, golden_entries());
  EXPECT_EQ(to_hex(encode(*m)), kGoldenCyclonDeltaHex);
  EXPECT_EQ(m->wire_size(), std::string(kGoldenCyclonDeltaHex).size() / 2);
}

TEST(DeltaGoldenFrames, PinnedDeltaFrameDecodesToOriginalFields) {
  ScopedDeltaMode delta(true);
  MessagePtr m = decode(from_hex(kGoldenCyclonDeltaHex));
  ASSERT_NE(m, nullptr);
  MessagePtr want = make_gossip(Kind::kCyclonRequest, golden_entries());
  expect_same_gossip(*want, *m);
}

TEST(DeltaGoldenFrames, LegacyGoldenBytesUnchangedByDeltaSupport) {
  // The pre-delta pin from golden_frame_test.cpp, re-checked here with the
  // delta machinery compiled in and OFF: bit-for-bit the v1 wire.
  ScopedDeltaMode off(false);
  std::vector<PeerDescriptor> one;
  one.push_back({7, Point{10, 2000, 300000000000ULL}, CellCoord{1, 2, 7}, 1});
  MessagePtr m = make_gossip(Kind::kCyclonReply, one);
  EXPECT_EQ(to_hex(encode(*m)),
            "02010700000001000000"
            "030a00000000000000d00700000000000000b864d945000000"
            "03010000000200000007000000");
}

// ---- decode hardening -----------------------------------------------------

void expect_total_delta(const std::vector<std::uint8_t>& bytes) {
  MessagePtr m = decode(bytes);
  if (m == nullptr) return;
  ASSERT_FALSE(bytes.empty());
  if (bytes[0] == kDeltaEscape) {
    ASSERT_GE(bytes.size(), 3u);
    EXPECT_EQ(static_cast<std::uint8_t>(m->kind()), bytes[2]);
  } else {
    EXPECT_EQ(static_cast<std::uint8_t>(m->kind()), bytes[0]);
  }
  EXPECT_EQ(m->wire_size(), bytes.size());
}

TEST(DeltaDecodeFuzz, EveryPrefixTruncationFailsCleanly) {
  ScopedDeltaMode delta(true);
  Rng rng(0xDE17A1);
  for (Kind k : kGossipKinds) {
    MessagePtr m = make_gossip(k, correlated_descriptors(rng, 5));
    const auto frame = encode(*m);
    for (std::size_t len = 0; len < frame.size(); ++len)
      EXPECT_EQ(decode(frame.data(), len), nullptr)
          << "kind " << int(k) << " prefix " << len;
  }
}

TEST(DeltaDecodeFuzz, SingleBitFlipsNeverCrash) {
  ScopedDeltaMode delta(true);
  Rng rng(0xDE17A2);
  for (Kind k : kGossipKinds) {
    MessagePtr m = make_gossip(k, hostile_descriptors(rng));
    const auto frame = encode(*m);
    for (std::size_t byte = 0; byte < frame.size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        auto copy = frame;
        copy[byte] ^= static_cast<std::uint8_t>(1u << bit);
        expect_total_delta(copy);
      }
    }
  }
}

TEST(DeltaDecodeFuzz, RandomMutationsNeverCrash) {
  ScopedDeltaMode delta(true);
  Rng rng(0xDE17A3);
  std::vector<std::vector<std::uint8_t>> frames;
  for (Kind k : kGossipKinds) {
    MessagePtr m = make_gossip(k, correlated_descriptors(rng, 6));
    frames.push_back(encode(*m));
  }
  for (int trial = 0; trial < 4000; ++trial) {
    auto copy = frames[rng.index(frames.size())];
    std::uint64_t edits = 1 + rng.below(4);
    for (std::uint64_t e = 0; e < edits && !copy.empty(); ++e)
      copy[rng.index(copy.size())] = static_cast<std::uint8_t>(rng.below(256));
    if (rng.below(4) == 0) copy.push_back(static_cast<std::uint8_t>(rng.below(256)));
    if (rng.below(4) == 0 && !copy.empty()) copy.pop_back();
    expect_total_delta(copy);
  }
}

TEST(DeltaDecodeFuzz, TargetedMalformedFramesAreRejected) {
  ScopedDeltaMode delta(true);
  Rng rng(0xDE17A4);
  MessagePtr m = make_gossip(Kind::kCyclonRequest, correlated_descriptors(rng, 3));
  const auto good = encode(*m);
  ASSERT_NE(decode(good), nullptr);

  // Unknown delta version.
  auto bad_version = good;
  bad_version[1] = 2;
  EXPECT_EQ(decode(bad_version), nullptr);

  // Escape prologue naming a kind with no delta codec.
  auto bad_kind = good;
  bad_kind[2] = static_cast<std::uint8_t>(Kind::kQuery);
  EXPECT_EQ(decode(bad_kind), nullptr);

  // Bare prologue: escape with no body at all.
  EXPECT_EQ(decode(std::vector<std::uint8_t>{0x00, 0x01, 0x01}), nullptr);

  // Varint overflow planted in the body (entry count position).
  auto overflow = good;
  static constexpr std::uint8_t kForever[] = {0x80, 0x80, 0x80, 0x80, 0x80, 0x80,
                                              0x80, 0x80, 0x80, 0x80, 0x80};
  overflow.erase(overflow.begin() + 3, overflow.end());
  overflow.insert(overflow.end(), std::begin(kForever), std::end(kForever));
  EXPECT_EQ(decode(overflow), nullptr);

  // Count bomb: claims 2^20 entries in a tiny frame.
  std::vector<std::uint8_t> bomb{0x00, 0x01, 0x01, 0x80, 0x80, 0x40};
  EXPECT_EQ(decode(bomb), nullptr);
}

TEST(DeltaDecodeFuzz, OutOfRangeBitmapBitsAreRejected) {
  // Build a frame whose second entry's value bitmap sets a bit past the
  // reference dimensionality; the decoder must reject, not index OOB.
  ScopedDeltaMode delta(true);
  MessagePtr m = make_gossip(Kind::kCyclonRequest, golden_entries());
  auto frame = encode(*m);
  const std::string hex = to_hex(frame);
  // The golden layout puts the value bitmap (0x03) right after the entry
  // flags+id+age ("000202"); flip it to 0b1000 = bit 3 of a 3-dim ref.
  const std::size_t entry = hex.find("000202");
  ASSERT_NE(entry, std::string::npos);
  const std::size_t pos = entry + 6;
  frame[pos / 2] = 0x08;
  EXPECT_EQ(decode(frame), nullptr);

  // Reserved entry flags (neither delta nor full) are rejected too.
  auto bad_flags = encode(*m);
  bad_flags[entry / 2] = 0x02;
  EXPECT_EQ(decode(bad_flags), nullptr);
}

}  // namespace
}  // namespace ares::wire
