// Golden-frame pins for the gossip exchange messages.
//
// The hex fixtures below are the exact frames the codec produced BEFORE
// Point/CellCoord moved to inline storage (captured from the tree at commit
// "Add clang-tidy gate and ares-lint determinism/layering linter"). The
// descriptor retype must be invisible on the wire: encoding the same
// logical messages must reproduce these bytes exactly, and decoding them
// must reproduce the same field values. If this test fails, the wire format
// changed — that breaks recorded-trace compatibility and the paper's
// byte-accounting, so it must be deliberate and versioned, never a side
// effect of a container swap.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/messages.h"
#include "gossip/cyclon.h"
#include "gossip/vicinity.h"
#include "runtime/wire.h"

namespace ares {
namespace {

// One descriptor exercises every field width: small id / huge id, varint
// point length, u64 values beyond 32 bits, multi-entry coord.
PeerDescriptor golden_descriptor(NodeId id, std::uint32_t age) {
  PeerDescriptor d;
  d.id = id;
  d.age = age;
  d.values = Point{10, 2000, 300000000000ULL};
  d.coord = CellCoord{1, 2, 7};
  return d;
}

std::string to_hex(const std::vector<std::uint8_t>& bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (std::uint8_t b : bytes) {
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0xF]);
  }
  return out;
}

std::vector<std::uint8_t> from_hex(const std::string& hex) {
  std::vector<std::uint8_t> out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i + 1 < hex.size(); i += 2)
    out.push_back(static_cast<std::uint8_t>(
        std::stoul(hex.substr(i, 2), nullptr, 16)));
  return out;
}

// 36-byte descriptor body shared by all four frames:
//   id(u32) age(u32) |values|=3(varint) 3*u64 |coord|=3(varint) 3*u32
const char* const kDescBody =
    "030a00000000000000d00700000000000000b86"
    "4d94500000003010000000200000007000000";

const std::string kDesc5Age0 = std::string("0500000000000000") + kDescBody;
const std::string kDescBeefAge42 = std::string("efbeadde2a000000") + kDescBody;
const std::string kDesc7Age1 = std::string("0700000001000000") + kDescBody;

// kind tag, count=2, then the two descriptors (94 bytes total).
const std::string kCyclonRequestHex = "0102" + kDesc5Age0 + kDescBeefAge42;
// kind tag, count=1, one descriptor (48 bytes total).
const std::string kCyclonReplyHex = "0201" + kDesc7Age1;
const std::string kVicinityRequestHex = "0302" + kDesc5Age0 + kDescBeefAge42;
const std::string kVicinityReplyHex = "0401" + kDesc7Age1;

void check_decoded_entries(const std::vector<PeerDescriptor>& entries,
                           bool two_entry_frame) {
  ASSERT_EQ(entries.size(), two_entry_frame ? 2u : 1u);
  const PeerDescriptor want =
      two_entry_frame ? golden_descriptor(5, 0) : golden_descriptor(7, 1);
  EXPECT_EQ(entries[0].id, want.id);
  EXPECT_EQ(entries[0].age, want.age);
  EXPECT_EQ(entries[0].values, want.values);
  EXPECT_EQ(entries[0].coord, want.coord);
  if (two_entry_frame) {
    EXPECT_EQ(entries[1].id, 0xDEADBEEFu);
    EXPECT_EQ(entries[1].age, 42u);
  }
}

// The gossip pins below are the LEGACY (v1) frames; the compressed form has
// its own pins in delta_codec_test.cpp. Force delta mode off per test so
// the bytes stay pinned when ctest runs under ARES_WIRE_DELTA=1.

TEST(GoldenFrames, CyclonRequestBytesUnchanged) {
  wire::ScopedDeltaMode legacy(false);
  CyclonShuffleMsg m;
  m.is_reply = false;
  m.entries.push_back(golden_descriptor(5, 0));
  m.entries.push_back(golden_descriptor(0xDEADBEEF, 42));
  EXPECT_EQ(to_hex(wire::encode(m)), kCyclonRequestHex);
  EXPECT_EQ(m.wire_size(), kCyclonRequestHex.size() / 2);
}

TEST(GoldenFrames, CyclonReplyBytesUnchanged) {
  wire::ScopedDeltaMode legacy(false);
  CyclonShuffleMsg m;
  m.is_reply = true;
  m.entries.push_back(golden_descriptor(7, 1));
  EXPECT_EQ(to_hex(wire::encode(m)), kCyclonReplyHex);
}

TEST(GoldenFrames, VicinityRequestBytesUnchanged) {
  wire::ScopedDeltaMode legacy(false);
  VicinityExchangeMsg m;
  m.is_reply = false;
  m.entries.push_back(golden_descriptor(5, 0));
  m.entries.push_back(golden_descriptor(0xDEADBEEF, 42));
  EXPECT_EQ(to_hex(wire::encode(m)), kVicinityRequestHex);
}

TEST(GoldenFrames, VicinityReplyBytesUnchanged) {
  wire::ScopedDeltaMode legacy(false);
  VicinityExchangeMsg m;
  m.is_reply = true;
  m.entries.push_back(golden_descriptor(7, 1));
  EXPECT_EQ(to_hex(wire::encode(m)), kVicinityReplyHex);
}

TEST(GoldenFrames, PinnedFramesDecodeToOriginalFields) {
  struct Case {
    const std::string& hex;
    bool is_vicinity;
    bool is_reply;
  };
  const Case cases[] = {
      {kCyclonRequestHex, false, false},
      {kCyclonReplyHex, false, true},
      {kVicinityRequestHex, true, false},
      {kVicinityReplyHex, true, true},
  };
  for (const auto& c : cases) {
    MessagePtr m = wire::decode(from_hex(c.hex));
    ASSERT_NE(m, nullptr) << c.hex;
    if (c.is_vicinity) {
      const auto* v = dynamic_cast<const VicinityExchangeMsg*>(m.get());
      ASSERT_NE(v, nullptr);
      EXPECT_EQ(v->is_reply, c.is_reply);
      check_decoded_entries(v->entries, !c.is_reply);
    } else {
      const auto* s = dynamic_cast<const CyclonShuffleMsg*>(m.get());
      ASSERT_NE(s, nullptr);
      EXPECT_EQ(s->is_reply, c.is_reply);
      check_decoded_entries(s->entries, !c.is_reply);
    }
  }
}

// ---- select-path frames (query / reply / progress) -------------------------
//
// Pinned when ReplyMsg grew its `complete` flag (the u8 after the id). These
// freeze the serving-path wire format: the reply flag, sigma-infinity and
// level -1 encodings, and dynamic filters all have exactly one byte layout.

QueryMsg golden_query(std::uint32_t sigma, int level, std::uint32_t mask) {
  QueryMsg q;
  q.id = 0x0102030405060708ULL;
  q.reply_to = 9;
  q.origin = 3;
  q.sigma = sigma;
  q.level = level;
  q.dims_mask = mask;
  q.query = RangeQuery::any(3).with(0, 40, std::nullopt).with(2, 7, 9);
  q.query.with_dynamic(1, 100, 200);
  return q;
}

const char* const kQueryHex =
    "05080706050403020109000000030000003200000003050000000301280000000107010901"
    "01016401c801";
const char* const kQueryNoSigmaHex =
    "0508070605040302010900000003000000ffffffff000000000003012800000001070109010"
    "1016401c801";
const char* const kReplyCompleteHex =
    "060807060504030201010205000000030a00000000000000d00700000000000000b864d9450"
    "00000efbeadde03010000000000000002000000000000000300000000000000";
const char* const kReplyIncompleteEmptyHex = "0608070605040302010000";
const char* const kProgressHex = "070807060504030201";

TEST(GoldenFrames, QueryBytesUnchanged) {
  EXPECT_EQ(to_hex(wire::encode(golden_query(50, 2, 0b101))), kQueryHex);
  EXPECT_EQ(to_hex(wire::encode(golden_query(kNoSigma, -1, 0))),
            kQueryNoSigmaHex);
}

TEST(GoldenFrames, ReplyBytesUnchanged) {
  ReplyMsg r;
  r.id = 0x0102030405060708ULL;
  r.complete = true;
  r.matching = {{5, {10, 2000, 300000000000ULL}}, {0xDEADBEEF, {1, 2, 3}}};
  EXPECT_EQ(to_hex(wire::encode(r)), kReplyCompleteHex);
  ReplyMsg empty;
  empty.id = 0x0102030405060708ULL;
  empty.complete = false;
  EXPECT_EQ(to_hex(wire::encode(empty)), kReplyIncompleteEmptyHex);
}

TEST(GoldenFrames, ProgressBytesUnchanged) {
  ProgressMsg p;
  p.id = 0x0102030405060708ULL;
  EXPECT_EQ(to_hex(wire::encode(p)), kProgressHex);
}

TEST(GoldenFrames, PinnedSelectFramesDecodeToOriginalFields) {
  MessagePtr qm = wire::decode(from_hex(kQueryHex));
  ASSERT_NE(qm, nullptr);
  const auto* q = dynamic_cast<const QueryMsg*>(qm.get());
  ASSERT_NE(q, nullptr);
  const QueryMsg want = golden_query(50, 2, 0b101);
  EXPECT_EQ(q->id, want.id);
  EXPECT_EQ(q->sigma, 50u);
  EXPECT_EQ(q->level, 2);
  EXPECT_EQ(q->dims_mask, 0b101u);
  EXPECT_EQ(q->query, want.query);

  MessagePtr rm = wire::decode(from_hex(kReplyCompleteHex));
  ASSERT_NE(rm, nullptr);
  const auto* r = dynamic_cast<const ReplyMsg*>(rm.get());
  ASSERT_NE(r, nullptr);
  EXPECT_TRUE(r->complete);
  ASSERT_EQ(r->matching.size(), 2u);
  EXPECT_EQ(r->matching[0].id, 5u);
  EXPECT_EQ(r->matching[0].values, (Point{10, 2000, 300000000000ULL}));
  EXPECT_EQ(r->matching[1].id, 0xDEADBEEFu);

  MessagePtr im = wire::decode(from_hex(kReplyIncompleteEmptyHex));
  ASSERT_NE(im, nullptr);
  const auto* i = dynamic_cast<const ReplyMsg*>(im.get());
  ASSERT_NE(i, nullptr);
  EXPECT_FALSE(i->complete);
  EXPECT_TRUE(i->matching.empty());
}

TEST(GoldenFrames, OverCapacityPointCountFailsDecodeCleanly) {
  // A frame claiming a point one past the inline capacity must decode to
  // nullptr — never throw from InlineVec — even with enough payload bytes.
  constexpr std::size_t n = Point::max_size() + 1;
  std::string hex = std::string("0201") + "0500000000000000";
  hex.push_back("0123456789abcdef"[n >> 4]);
  hex.push_back("0123456789abcdef"[n & 0xF]);
  for (std::size_t i = 0; i < n; ++i) hex += "0a00000000000000";
  hex += "00";  // empty coord
  EXPECT_EQ(wire::decode(from_hex(hex)), nullptr);
}

}  // namespace
}  // namespace ares
