#include "workload/distributions.h"

#include <gtest/gtest.h>

#include "common/summary.h"

namespace ares {
namespace {

class DistributionsTest : public ::testing::Test {
 protected:
  DistributionsTest() : space(AttributeSpace::uniform(4, 3, 0, 80)), rng(9) {}

  std::vector<Point> sample(const PointGen& gen, std::size_t n) {
    std::vector<Point> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) out.push_back(gen(rng));
    return out;
  }

  AttributeSpace space;
  Rng rng;
};

TEST_F(DistributionsTest, UniformBoundsAndSpread) {
  auto pts = sample(uniform_points(space, 0, 80), 3000);
  Summary s;
  for (const auto& p : pts) {
    ASSERT_EQ(p.size(), 4u);
    for (auto v : p) {
      ASSERT_LE(v, 80u);
      s.add(static_cast<double>(v));
    }
  }
  EXPECT_NEAR(s.mean(), 40.0, 1.5);
  EXPECT_GT(s.stddev(), 15.0);  // genuinely spread out
}

TEST_F(DistributionsTest, HotspotConcentratesAround60) {
  auto pts = sample(hotspot_points(space), 3000);
  Summary s;
  for (const auto& p : pts)
    for (auto v : p) s.add(static_cast<double>(v));
  EXPECT_NEAR(s.mean(), 60.0, 1.0);
  EXPECT_NEAR(s.stddev(), 10.0, 1.5);
}

TEST_F(DistributionsTest, NormalClampsToBounds) {
  auto gen = normal_points(space, 0.0, 30.0, 0, 80);  // mass below 0 clamps
  auto pts = sample(gen, 1000);
  for (const auto& p : pts)
    for (auto v : p) EXPECT_LE(v, 80u);
}

TEST_F(DistributionsTest, ClusteredReusesCenters) {
  auto gen = clustered_points(space, 4, 0, 80, 0, /*seed=*/5);
  auto pts = sample(gen, 500);
  // With zero spread there can be at most 4 distinct points.
  std::set<Point> distinct(pts.begin(), pts.end());
  EXPECT_LE(distinct.size(), 4u);
  EXPECT_GE(distinct.size(), 2u);
}

TEST_F(DistributionsTest, ClusteredSpreadStaysNearCenters) {
  auto centers_only = clustered_points(space, 3, 10, 70, 0, 5);
  auto with_spread = clustered_points(space, 3, 10, 70, 2, 5);
  auto base = sample(centers_only, 300);
  auto jittered = sample(with_spread, 300);
  std::set<Point> centers(base.begin(), base.end());
  for (const auto& p : jittered) {
    bool near_any = false;
    for (const auto& c : centers) {
      bool near = true;
      for (std::size_t i = 0; i < p.size(); ++i) {
        auto d = p[i] > c[i] ? p[i] - c[i] : c[i] - p[i];
        near = near && d <= 2;
      }
      near_any = near_any || near;
    }
    EXPECT_TRUE(near_any);
  }
}

TEST_F(DistributionsTest, ClusteredDeterministicCenters) {
  auto g1 = clustered_points(space, 3, 0, 80, 0, 42);
  auto g2 = clustered_points(space, 3, 0, 80, 0, 42);
  Rng r1(1), r2(1);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(g1(r1), g2(r2));
}

TEST_F(DistributionsTest, XtremlabBoundsRespected) {
  auto pts = sample(xtremlab_points(space), 2000);
  for (const auto& p : pts)
    for (auto v : p) EXPECT_LE(v, 80u);
}

TEST_F(DistributionsTest, XtremlabIsSkewed) {
  // CPU dimension (k=0): low tiers must dominate high tiers.
  auto pts = sample(xtremlab_points(space), 4000);
  std::size_t low = 0, high = 0;
  for (const auto& p : pts) {
    if (p[0] <= 26) ++low;
    if (p[0] >= 54) ++high;
  }
  EXPECT_GT(low, high * 2);
}

TEST_F(DistributionsTest, XtremlabAttributesCorrelated) {
  // Hosts with high bandwidth (dim 2) should skew toward more memory
  // (dim 1) thanks to the latent quality variable.
  auto pts = sample(xtremlab_points(space), 6000);
  Summary mem_fast, mem_slow;
  for (const auto& p : pts) {
    if (p[2] >= 60)
      mem_fast.add(static_cast<double>(p[1]));
    else if (p[2] <= 20)
      mem_slow.add(static_cast<double>(p[1]));
  }
  ASSERT_GT(mem_fast.count(), 50u);
  ASSERT_GT(mem_slow.count(), 50u);
  EXPECT_GT(mem_fast.mean(), mem_slow.mean());
}

}  // namespace
}  // namespace ares
