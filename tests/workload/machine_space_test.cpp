#include "workload/machine_space.h"

#include <gtest/gtest.h>

#include "exp/grid.h"

namespace ares {
namespace {

TEST(MachineSpace, ShapeAndBoundaries) {
  auto s = machine_space();
  EXPECT_EQ(s.dimensions(), 5);
  EXPECT_EQ(s.max_level(), 3);
  // The paper's irregular-boundaries example: memory cells are NOT equal
  // width.
  auto w0 = *s.cell_value_hi(kMemoryMb, 0) - s.cell_value_lo(kMemoryMb, 0);
  auto w5 = *s.cell_value_hi(kMemoryMb, 5) - s.cell_value_lo(kMemoryMb, 5);
  EXPECT_NE(w0, w5);
}

TEST(MachineSpace, MemoryCellMapping) {
  auto s = machine_space();
  EXPECT_EQ(s.cell_index(kMemoryMb, 100), 0u);     // < 256 MB
  EXPECT_EQ(s.cell_index(kMemoryMb, 4096), 5u);    // [4GB, 8GB)
  EXPECT_EQ(s.cell_index(kMemoryMb, 5000), 5u);
  EXPECT_EQ(s.cell_index(kMemoryMb, 1u << 20), 7u);  // open-ended top
}

TEST(MachineSpace, GeneratorProducesValidArchetypes) {
  auto gen = machine_points();
  Rng rng(5);
  int servers = 0;
  for (int i = 0; i < 2000; ++i) {
    Point p = gen(rng);
    ASSERT_EQ(p.size(), 5u);
    EXPECT_LE(p[kCpuIsa], kIsaSparc);
    EXPECT_GE(p[kOsCode], kOsLinux);
    if (p[kMemoryMb] >= 16384 && p[kBandwidthKbps] >= 102400) ++servers;
  }
  // Servers exist but are a minority.
  EXPECT_GT(servers, 20);
  EXPECT_LT(servers, 600);
}

TEST(MachineSpace, ServersCorrelateAcrossAttributes) {
  auto gen = machine_points();
  Rng rng(6);
  Summary disk_big_mem, disk_small_mem;
  for (int i = 0; i < 4000; ++i) {
    Point p = gen(rng);
    if (p[kMemoryMb] >= 16384)
      disk_big_mem.add(static_cast<double>(p[kDiskGb]));
    else if (p[kMemoryMb] <= 1024)
      disk_small_mem.add(static_cast<double>(p[kDiskGb]));
  }
  ASSERT_GT(disk_big_mem.count(), 50u);
  ASSERT_GT(disk_small_mem.count(), 50u);
  EXPECT_GT(disk_big_mem.mean(), 3 * disk_small_mem.mean());
}

TEST(MachineSpace, PaperExampleQuerySemantics) {
  auto q = paper_example_query();
  // An IA32-64 Linux 2.6.19 server with plenty of everything matches.
  EXPECT_TRUE(q.matches({kIsaX86_64, 8192, 1024, 256, kOsLinux + 19}));
  // ARM fails the CPU constraint.
  EXPECT_FALSE(q.matches({kIsaArm64, 8192, 1024, 256, kOsLinux + 19}));
  // Too little memory.
  EXPECT_FALSE(q.matches({kIsaX86_64, 2048, 1024, 256, kOsLinux + 19}));
  // Wrong OS generation.
  EXPECT_FALSE(q.matches({kIsaX86_64, 8192, 1024, 256, kOsLinux + 25}));
}

TEST(MachineSpace, EndToEndQueryOnIrregularGrid) {
  // The exactly-once invariant must hold on irregular boundaries too.
  Grid::Config cfg{.space = machine_space()};
  cfg.nodes = 500;
  cfg.oracle = true;
  cfg.latency = "lan";
  cfg.seed = 9;
  cfg.protocol.gossip_enabled = false;
  Grid grid(cfg, machine_points());

  for (const auto& q :
       {paper_example_query(),
        RangeQuery::any(5).with(kMemoryMb, 4096, std::nullopt),
        RangeQuery::any(5).with(kCpuIsa, kIsaArm32, kIsaArm64),
        RangeQuery::any(5).with(kBandwidthKbps, 100000, std::nullopt)}) {
    auto truth = grid.ground_truth(q);
    auto out = grid.run_query(grid.random_node(), q);
    ASSERT_TRUE(out.completed);
    std::set<NodeId> got;
    for (const auto& m : out.matches) got.insert(m.id);
    EXPECT_EQ(got, std::set<NodeId>(truth.begin(), truth.end()));
    EXPECT_EQ(grid.stats().find(out.id)->duplicates, 0u);
  }
}

TEST(MachineSpace, OpenEndedTopCellQueryable) {
  Grid::Config cfg{.space = machine_space()};
  cfg.nodes = 300;
  cfg.oracle = true;
  cfg.latency = "lan";
  cfg.seed = 10;
  cfg.protocol.gossip_enabled = false;
  Grid grid(cfg, machine_points());
  // 128 GB RAM is beyond the last cut (16384): top-cell residents.
  auto q = RangeQuery::any(5).with(kMemoryMb, 131072, std::nullopt);
  auto out = grid.run_query(grid.random_node(), q);
  ASSERT_TRUE(out.completed);
  EXPECT_EQ(out.matches.size(), grid.ground_truth(q).size());
}

}  // namespace
}  // namespace ares
