#include "workload/query_workload.h"

#include <gtest/gtest.h>

#include <cmath>

#include "space/cells.h"
#include "workload/distributions.h"

namespace ares {
namespace {

class QueryWorkloadTest : public ::testing::Test {
 protected:
  QueryWorkloadTest() : space(AttributeSpace::uniform(3, 3, 0, 80)), rng(13) {}

  std::vector<Point> uniform_sample(std::size_t n) {
    auto gen = uniform_points(space, 0, 80);
    std::vector<Point> out;
    for (std::size_t i = 0; i < n; ++i) out.push_back(gen(rng));
    return out;
  }

  AttributeSpace space;
  Rng rng;
};

TEST_F(QueryWorkloadTest, QueryFromRegionRoundTrips) {
  Region r({{1, 3}, {0, 7}, {4, 4}});
  auto q = query_from_region(space, r);
  EXPECT_EQ(q.to_region(space), r);
  EXPECT_TRUE(q.range(1).unconstrained());
}

TEST_F(QueryWorkloadTest, QueryFromRegionOpenTop) {
  Region r({{6, 7}, {0, 7}, {0, 7}});
  auto q = query_from_region(space, r);
  EXPECT_FALSE(q.range(0).hi.has_value());  // unbounded above
  EXPECT_TRUE(q.matches({1'000'000, 0, 0}));
  EXPECT_FALSE(q.matches({59, 0, 0}));
}

TEST_F(QueryWorkloadTest, BestCaseVolumeApproximatesF) {
  for (double f : {0.05, 0.125, 0.5}) {
    auto q = best_case_query(space, f, rng);
    double vol = static_cast<double>(q.to_region(space).cell_volume()) /
                 static_cast<double>(space.cell_count(0));
    EXPECT_GE(vol, f * 0.99);
    EXPECT_LE(vol, f * 2.01);  // dyadic rounding at most doubles
  }
}

TEST_F(QueryWorkloadTest, BestCaseStaysWithinOneEnclosingCell) {
  Cells cells(space);
  for (int trial = 0; trial < 30; ++trial) {
    auto q = best_case_query(space, 0.05, rng);
    Region r = q.to_region(space);
    // Find the smallest level whose single cell contains the region; the
    // region must not straddle two cells of that level.
    CellCoord lo(3), hi(3);
    for (int d = 0; d < 3; ++d) {
      lo[static_cast<std::size_t>(d)] = r.interval(d).lo;
      hi[static_cast<std::size_t>(d)] = r.interval(d).hi;
    }
    bool within_some_cell = false;
    for (int l = 0; l <= 3; ++l)
      within_some_cell = within_some_cell || cells.same_cell(lo, hi, l);
    EXPECT_TRUE(within_some_cell);
    // Specifically: the level-max cell always contains it, but a best-case
    // region of 5% must fit strictly below the top level too.
    EXPECT_TRUE(cells.same_cell(lo, hi, 2));
  }
}

TEST_F(QueryWorkloadTest, WorstCaseCrossesEveryLevelSplit) {
  auto q = worst_case_query(space, 0.125);
  Region r = q.to_region(space);
  const CellIndex mid = space.cells_per_dim() / 2;
  for (int d = 0; d < 3; ++d) {
    // Straddles the top-level boundary ...
    EXPECT_LT(r.interval(d).lo, mid);
    EXPECT_GE(r.interval(d).hi, mid);
  }
}

TEST_F(QueryWorkloadTest, WorstCaseSelectivityTracksCellRounding) {
  auto pts = uniform_sample(8000);
  for (double f : {0.125, 0.3, 0.8}) {
    auto q = worst_case_query(space, f);
    // Cell-aligned box of width w = round(f^(1/d) * 8) per dimension.
    auto w = static_cast<double>(q.to_region(space).interval(0).width());
    double expected = std::pow(w / 8.0, 3.0);
    EXPECT_NEAR(measured_selectivity(q, pts), expected, 0.03) << "f=" << f;
  }
}

TEST_F(QueryWorkloadTest, WorstCaseIsCellAligned) {
  // The box snaps to cell boundaries (the straddling variant lives in the
  // ablation bench); uniform(0,80,L=3) cells are width 10.
  auto q = worst_case_query(space, 0.2);
  const auto& r0 = q.range(0);
  ASSERT_TRUE(r0.lo && r0.hi);
  EXPECT_EQ(*r0.lo % 10, 0u);
  EXPECT_EQ(*r0.hi % 10, 9u);
}

TEST_F(QueryWorkloadTest, UniformSelectivityTracksVolume) {
  auto pts = uniform_sample(8000);
  auto q = best_case_query(space, 0.125, rng);
  double vol = static_cast<double>(q.to_region(space).cell_volume()) /
               static_cast<double>(space.cell_count(0));
  EXPECT_NEAR(measured_selectivity(q, pts), vol, 0.03);
}

TEST_F(QueryWorkloadTest, EmpiricalQueryHitsTargetSelectivity) {
  auto pts = uniform_sample(5000);
  for (double f : {0.1, 0.25}) {
    auto q = empirical_query(space, pts, f, 2, rng);
    EXPECT_NEAR(measured_selectivity(q, pts), f, 0.08);
  }
}

TEST_F(QueryWorkloadTest, EmpiricalQueryWorksOnSkewedData) {
  auto gen = xtremlab_points(space);
  std::vector<Point> pts;
  for (int i = 0; i < 5000; ++i) pts.push_back(gen(rng));
  auto q = empirical_query(space, pts, 0.125, 2, rng);
  double got = measured_selectivity(q, pts);
  EXPECT_GT(got, 0.02);
  EXPECT_LT(got, 0.5);
}

TEST_F(QueryWorkloadTest, MeasuredSelectivityEdges) {
  auto pts = uniform_sample(100);
  EXPECT_DOUBLE_EQ(measured_selectivity(RangeQuery::any(3), pts), 1.0);
  auto none = RangeQuery::any(3).with(0, 1000, std::nullopt);
  EXPECT_DOUBLE_EQ(measured_selectivity(none, pts), 0.0);
}

TEST_F(QueryWorkloadTest, BestCaseFullSelectivityIsWholeSpace) {
  auto q = best_case_query(space, 1.0, rng);
  EXPECT_EQ(q.to_region(space).cell_volume(), space.cell_count(0));
}

}  // namespace
}  // namespace ares
