#!/usr/bin/env python3
"""ares-lint: repo-specific determinism & layering invariants.

Machine-checks the properties the reproducibility story rests on but that
clang-tidy cannot express (see DESIGN.md, "Static analysis & determinism
invariants"):

  unordered-iter   No range-for / iterator traversal of std::unordered_*
                   containers in the protocol layers (src/space, src/core,
                   src/gossip, src/dht, src/baselines). Hash order must
                   never leak into protocol decisions or protocol output.
                   Suppress a deliberate site with
                       // ares-lint: unordered-iter-ok(<reason>)
                   on the offending line or the line above.

  forbidden-api    No rand()/srand()/std::random_device/system_clock/
                   steady_clock/getenv in src/ outside src/common and
                   src/exp (bench/ and tests/ are out of scope). All
                   randomness flows through common/rng.h, all time through
                   the simulated clock, all environment access through
                   common/options.h. Suppress with
                       // ares-lint: forbidden-api-ok(<reason>)

  raw-descriptor-vec
                   No std::vector<AttrValue> / std::vector<CellIndex>
                   spellings in src/ outside src/common. Descriptor
                   coordinates store their elements inline: spell them
                   Point / CellCoord (or AttrValues for genuinely unbounded
                   value lists) so descriptor copies stay allocation-free.
                   Suppress with  // ares-lint: raw-descriptor-vec-ok(<reason>)

  shard-seam       No direct use of the sharded-execution primitives
                   (EventQueue::push_keyed, ShardEngine::alloc_key/
                   set_node_shard/run_window/schedule_coord) outside
                   src/sim. Cross-shard communication flows through ONE
                   seam — Network::send()/node_timer() scheduling into the
                   ShardEngine mailboxes — so determinism arguments stay
                   local to src/sim. Suppress with
                       // ares-lint: shard-seam-ok(<reason>)

  net-seam         No raw socket/event-loop/process syscall headers
                   (<sys/socket.h>, <sys/epoll.h>, <unistd.h>, ...) outside
                   src/net. The UDP backend is the one place that talks to
                   the kernel; every other layer goes through net/process.h
                   wrappers, so protocol and experiment code stays
                   kernel-free (and trivially portable/simulable). Suppress
                   with  // ares-lint: net-seam-ok(<reason>)

  raw-mutex        No std::mutex/std::lock_guard/std::unique_lock/
                   std::condition_variable (or their headers, or naked
                   .lock()/.unlock()/.try_lock() calls) in src/ outside
                   src/common. All locking goes through ares::Mutex/
                   MutexLock/CondVar (common/mutex.h): annotated for clang
                   -Wthread-safety and rank-checked against the DESIGN.md
                   §11 lock hierarchy in debug builds. Suppress with
                       // ares-lint: raw-mutex-ok(<reason>)

  mutex-guard      Every ares::Mutex member declared in src/ outside
                   src/common must have at least one ARES_GUARDED_BY/
                   ARES_PT_GUARDED_BY/ARES_REQUIRES/ARES_ACQUIRE/
                   ARES_RELEASE/ARES_EXCLUDES user naming it in the same
                   file — a mutex that guards nothing is either dead or
                   its fields are unannotated. Suppress with
                       // ares-lint: mutex-guard-ok(<reason>)

  atomic-ordering  Every std::atomic declaration in src/ outside src/common
                   must carry an  // ordering: <why>  note on the same line
                   or in the comment block directly above, stating the
                   memory-order discipline and what publishes what.
                   Suppress with  // ares-lint: atomic-ordering-ok(<reason>)

  layering         Full declared include-DAG over src/ (generalizes the old
                   cmake/check_include_hygiene.cmake core/gossip rule).
                   Violations are reported per edge. Suppress a single
                   include with  // ares-lint: layering-ok(<reason>)

  codec            Every wire::Kind enumerator (src/runtime/message.h,
                   excluding the kInvalid/kTestBase sentinels) must have a
                   register_codec() call in src/wire/codecs.cpp and a
                   round-trip case in tests/wire/codec_test.cpp.

  delta-codec      Every register_delta_codec(Kind::X, ...) call in
                   src/wire/codecs.cpp must be paired with a
                   register_codec(Kind::X, ...) call in the same file. The
                   legacy form stays the default on-the-wire encoding and
                   the only decode path with delta mode off (ARES_WIRE_DELTA
                   unset); a delta-only kind would be unreadable by v1
                   peers and break the byte-identical figure guarantee.

Suppressions must carry a non-empty reason; the per-rule suppression count
is asserted against tools/lint_baseline.txt so it can only shrink, never
silently grow (update deliberately with --update-baseline).

Usage:
  ares_lint.py [--root DIR] [--baseline FILE] [--update-baseline]
  ares_lint.py --self-test FIXTURE_DIR

Exit codes: 0 clean, 1 findings or baseline regression, 2 usage/IO error.
"""

from __future__ import annotations

import argparse
import bisect
import pathlib
import re
import sys

PROTOCOL_DIRS = ("space", "core", "gossip", "dht", "baselines")

# forbidden-api applies to src/ except these (harness/infrastructure code
# that legitimately touches the environment and wall clock).
API_EXEMPT_DIRS = ("common", "exp")

# Declared include-DAG: src/<dir> may include headers only from itself and
# the listed directories. Edges reflect the architecture:
#   common -> space/runtime -> sim -> protocol (core/gossip) ->
#   dht/baselines -> wire -> workload/exp
# core and gossip must stay simulator-independent (no sim/, no exp/): the
# same protocol code runs against the discrete-event Network, the
# LoopbackRuntime, and any future socket transport.
LAYERS = {
    "common": [],
    "space": ["common"],
    "runtime": ["common"],
    "net": ["common", "runtime"],
    "sim": ["common", "runtime"],
    "gossip": ["common", "space", "runtime"],
    "core": ["common", "space", "runtime", "gossip"],
    "dht": ["common", "space", "runtime", "sim"],
    "baselines": ["common", "space", "runtime", "sim", "core", "gossip"],
    "wire": ["common", "space", "runtime", "core", "gossip", "dht", "baselines"],
    "workload": ["common", "space"],
    "exp": ["common", "space", "runtime", "net", "sim", "core", "gossip", "dht",
            "baselines", "wire", "workload"],
}

CODEC_ENUM = "src/runtime/message.h"
CODEC_IMPL = "src/wire/codecs.cpp"
CODEC_TEST = "tests/wire/codec_test.cpp"
CODEC_SENTINELS = {"kInvalid", "kTestBase"}

# raw-descriptor-vec applies to src/ except src/common (where the canonical
# aliases themselves live).
RAW_DESCRIPTOR_VEC = [
    (re.compile(r"\bstd\s*::\s*vector\s*<\s*AttrValue\s*>"),
     "std::vector<AttrValue>",
     "Point (inline storage) or AttrValues (unbounded value lists)"),
    (re.compile(r"\bstd\s*::\s*vector\s*<\s*CellIndex\s*>"),
     "std::vector<CellIndex>", "CellCoord (inline storage)"),
]

# shard-seam applies to src/ except src/sim (where the engine and the one
# legitimate mailbox seam — Network — live).
SHARD_SEAM = [
    (re.compile(r"\bpush_keyed\s*\("), "EventQueue::push_keyed()"),
    (re.compile(r"\balloc_key\s*\("), "ShardEngine::alloc_key()"),
    (re.compile(r"\bset_node_shard\s*\("), "ShardEngine::set_node_shard()"),
    (re.compile(r"\brun_window\s*\("), "ShardEngine::run_window()"),
    (re.compile(r"\bschedule_coord\s*\("), "ShardEngine::schedule_coord()"),
]

# raw-mutex applies to src/ except src/common (where the annotated
# ares::Mutex wrappers over the std primitives live).
RAW_MUTEX = [
    (re.compile(r"\bstd\s*::\s*(?:recursive_|timed_|recursive_timed_|"
                r"shared_)?mutex\b"),
     "a std mutex type"),
    (re.compile(r"\bstd\s*::\s*(?:lock_guard|unique_lock|scoped_lock|"
                r"shared_lock)\b"),
     "a std lock guard"),
    (re.compile(r"\bstd\s*::\s*condition_variable(?:_any)?\b"),
     "std::condition_variable"),
    (re.compile(r"(?:\.|->)\s*(?:try_lock|lock|unlock)\s*\(\s*\)"),
     "a naked lock()/unlock()/try_lock() call"),
]
RAW_MUTEX_HEADERS = frozenset(("mutex", "condition_variable", "shared_mutex"))

# mutex-guard: an ares::Mutex member declaration, and the annotation macros
# that count as "using" it.
MUTEX_MEMBER = re.compile(r"\b(?:ares\s*::\s*)?Mutex\s+([A-Za-z_]\w*)\s*[;{(=]")
ANNOTATION_USE = (r"ARES_(?:PT_GUARDED_BY|GUARDED_BY|REQUIRES|ACQUIRE|"
                  r"RELEASE|EXCLUDES)")

ATOMIC_DECL = re.compile(r"\bstd\s*::\s*atomic\s*<")

FORBIDDEN_API = [
    (re.compile(r"\brand\s*\("), "rand()"),
    (re.compile(r"\bsrand\s*\("), "srand()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\bsystem_clock\b"), "system_clock"),
    (re.compile(r"\bsteady_clock\b"), "steady_clock"),
    (re.compile(r"\bgetenv\b"), "getenv"),
]

# net-seam: syscall headers whose use is confined to src/net. Deliberately
# the socket/event-loop/process set only — <sys/resource.h> (rusage in
# bench_json) and friends are not transport seams.
NET_SEAM_HEADERS = frozenset((
    "sys/socket.h", "sys/epoll.h", "sys/select.h", "sys/wait.h",
    "netinet/in.h", "arpa/inet.h", "unistd.h", "poll.h", "fcntl.h",
))

UNORDERED_DECL = re.compile(r"\bstd\s*::\s*unordered_(?:map|set|multimap|multiset)\s*<")
SUPPRESS = re.compile(r"//\s*ares-lint:\s*([a-z-]+)-ok\(([^)\n]*)\)")
RANGE_FOR = re.compile(
    r"\bfor\s*\([^;()]*?:\s*([A-Za-z_]\w*(?:\s*(?:\.|->)\s*[A-Za-z_]\w*)*)"
    r"\s*(\(\s*\))?\s*\)")
BEGIN_CALL = re.compile(r"\b([A-Za-z_]\w*)\s*(?:\.|->)\s*c?begin\s*\(")
INCLUDE = re.compile(r'^\s*#\s*include\s+"([^"]+)"', re.M)
ANGLE_INCLUDE = re.compile(r'^\s*#\s*include\s+<([^>]+)>', re.M)


class Finding:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self):
        loc = f"{self.path}:{self.line}" if self.line else str(self.path)
        return f"{loc}: [{self.rule}] {self.message}"


class SourceFile:
    """One scanned file: raw text, comment-stripped text, suppressions."""

    def __init__(self, path: pathlib.Path, rel: str):
        self.path = path
        self.rel = rel
        self.text = path.read_text(encoding="utf-8", errors="replace")
        # Offsets of line starts, for offset -> line-number mapping.
        self.line_starts = [0]
        for m in re.finditer(r"\n", self.text):
            self.line_starts.append(m.end())
        # Suppression tags by line number (collected before comments are
        # stripped, since the tags live in comments).
        self.suppressions = {}  # line -> (rule, reason)
        for m in SUPPRESS.finditer(self.text):
            self.suppressions[self.line_of(m.start())] = (
                m.group(1), m.group(2).strip())
        self.code = strip_comments(self.text)

    def line_of(self, offset: int) -> int:
        return bisect.bisect_right(self.line_starts, offset)

    def suppressed(self, rule: str, line: int):
        """The tag for `rule` on `line` or the line above, if any."""
        for cand in (line, line - 1):
            tag = self.suppressions.get(cand)
            if tag and tag[0] == rule:
                return tag
        return None


def strip_comments(text: str) -> str:
    """Blanks out // and /* */ comments and string/char literals, keeping
    offsets (and thus line numbers) stable."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append(re.sub(r"[^\n]", " ", text[i:j]))
            i = j
        elif c in "\"'":
            j = i + 1
            while j < n and text[j] != c:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(c + " " * (j - i - 2) + (c if j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def balanced_angle_end(text: str, start: int) -> int:
    """Index just past the matching '>' for the '<' at text[start]."""
    depth = 0
    for i in range(start, len(text)):
        if text[i] == "<":
            depth += 1
        elif text[i] == ">":
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def last_component(expr: str) -> str:
    """Final identifier of `a.b->c` (the member actually iterated)."""
    return re.split(r"\.|->", expr)[-1].strip()


def iter_files(root: pathlib.Path, subdirs):
    for sub in subdirs:
        d = root / sub
        if not d.is_dir():
            continue
        for p in sorted(d.rglob("*")):
            if p.suffix in (".h", ".hpp", ".cpp", ".cc"):
                yield p


class Linter:
    def __init__(self, root: pathlib.Path):
        self.root = root
        self.findings = []
        self.suppression_counts = {"unordered-iter": 0, "forbidden-api": 0,
                                   "raw-descriptor-vec": 0, "layering": 0,
                                   "shard-seam": 0, "net-seam": 0,
                                   "raw-mutex": 0, "mutex-guard": 0,
                                   "atomic-ordering": 0}

    def add(self, rule, sf, offset_or_line, message, offset=True):
        line = sf.line_of(offset_or_line) if offset else offset_or_line
        tag = sf.suppressed(rule, line)
        if tag is not None:
            if not tag[1]:
                self.findings.append(Finding(
                    rule, sf.rel, line,
                    f"suppression tag without a reason: every {rule}-ok() "
                    "needs a justification"))
            else:
                self.suppression_counts[rule] += 1
            return
        self.findings.append(Finding(rule, sf.rel, line, message))

    def load(self, rel: str):
        p = self.root / rel
        if not p.is_file():
            return None
        return SourceFile(p, rel)

    # -- rule: unordered-iter ------------------------------------------------

    def unordered_names(self, files):
        """Names declared (anywhere in the protocol layers) with an
        unordered container type: members, locals, params, aliases."""
        names = set()
        for sf in files:
            for m in UNORDERED_DECL.finditer(sf.code):
                end = balanced_angle_end(sf.code, m.end() - 1)
                if end < 0:
                    continue
                after = sf.code[end:end + 160]
                dm = re.match(r"\s*[&*]?\s*([A-Za-z_]\w*)\s*[;={(,)]", after)
                if dm:
                    names.add(dm.group(1))
            # `using Foo = std::unordered_map<...>` aliases: treat variables
            # declared with the alias as unordered too.
            for m in re.finditer(
                    r"\busing\s+([A-Za-z_]\w*)\s*=\s*std\s*::\s*unordered_",
                    sf.code):
                alias = m.group(1)
                for dm in re.finditer(
                        r"\b" + re.escape(alias) + r"\s+([A-Za-z_]\w*)\s*[;={]",
                        sf.code):
                    names.add(dm.group(1))
        return names

    def check_unordered_iter(self):
        files = [sf for sf in (SourceFile(p, str(p.relative_to(self.root)))
                               for p in iter_files(self.root / "src",
                                                   PROTOCOL_DIRS))]
        names = self.unordered_names(files)
        if not names:
            return
        for sf in files:
            for m in RANGE_FOR.finditer(sf.code):
                target = last_component(m.group(1))
                if target in names:
                    self.add("unordered-iter", sf, m.start(),
                             f"range-for over unordered container '{m.group(1)}'"
                             " — hash order leaks into traversal; use a "
                             "FlatMap/FlatSet or sorted_elements() from "
                             "common/sorted.h")
            for m in BEGIN_CALL.finditer(sf.code):
                if m.group(1) in names:
                    self.add("unordered-iter", sf, m.start(),
                             f"iterator traversal of unordered container "
                             f"'{m.group(1)}' — hash order leaks; use a "
                             "FlatMap/FlatSet or sorted_elements() from "
                             "common/sorted.h")

    # -- rule: forbidden-api -------------------------------------------------

    def check_forbidden_api(self):
        src = self.root / "src"
        if not src.is_dir():
            return
        scan_dirs = [d.name for d in sorted(src.iterdir())
                     if d.is_dir() and d.name not in API_EXEMPT_DIRS]
        for p in iter_files(src, scan_dirs):
            sf = SourceFile(p, str(p.relative_to(self.root)))
            for rx, what in FORBIDDEN_API:
                for m in rx.finditer(sf.code):
                    self.add("forbidden-api", sf, m.start(),
                             f"{what} in protocol/runtime code — randomness "
                             "must flow through common/rng.h, time through "
                             "the simulated clock, environment access "
                             "through common/options.h")

    # -- rule: raw-descriptor-vec --------------------------------------------

    def check_raw_descriptor_vec(self):
        src = self.root / "src"
        if not src.is_dir():
            return
        scan_dirs = [d.name for d in sorted(src.iterdir())
                     if d.is_dir() and d.name != "common"]
        for p in iter_files(src, scan_dirs):
            sf = SourceFile(p, str(p.relative_to(self.root)))
            for rx, what, use in RAW_DESCRIPTOR_VEC:
                for m in rx.finditer(sf.code):
                    self.add("raw-descriptor-vec", sf, m.start(),
                             f"{what} outside common/ — spell it {use}; "
                             "descriptor coordinates store elements inline "
                             "(common/inline_vec.h) so copies never allocate")

    # -- rule: raw-mutex -----------------------------------------------------

    def check_raw_mutex(self):
        src = self.root / "src"
        if not src.is_dir():
            return
        scan_dirs = [d.name for d in sorted(src.iterdir())
                     if d.is_dir() and d.name != "common"]
        for p in iter_files(src, scan_dirs):
            sf = SourceFile(p, str(p.relative_to(self.root)))
            # Raw text: includes live outside the stripped code.
            for m in ANGLE_INCLUDE.finditer(sf.text):
                if m.group(1) in RAW_MUTEX_HEADERS:
                    self.add("raw-mutex", sf, m.start(),
                             f"<{m.group(1)}> outside src/common — locking "
                             "goes through ares::Mutex/MutexLock/CondVar "
                             "(common/mutex.h), annotated for -Wthread-safety "
                             "and rank-checked in debug builds")
            for rx, what in RAW_MUTEX:
                for m in rx.finditer(sf.code):
                    self.add("raw-mutex", sf, m.start(),
                             f"{what} outside src/common — use ares::Mutex/"
                             "MutexLock/CondVar (common/mutex.h) so the "
                             "thread-safety analysis and the lock-rank "
                             "checker see the critical section "
                             "(DESIGN.md §11)")

    # -- rule: mutex-guard ---------------------------------------------------

    def check_mutex_guard(self):
        src = self.root / "src"
        if not src.is_dir():
            return
        scan_dirs = [d.name for d in sorted(src.iterdir())
                     if d.is_dir() and d.name != "common"]
        for p in iter_files(src, scan_dirs):
            sf = SourceFile(p, str(p.relative_to(self.root)))
            for m in MUTEX_MEMBER.finditer(sf.code):
                name = m.group(1)
                if re.search(ANNOTATION_USE + r"\s*\([^)]*\b" +
                             re.escape(name) + r"\b", sf.code):
                    continue
                self.add("mutex-guard", sf, m.start(),
                         f"ares::Mutex '{name}' has no ARES_GUARDED_BY/"
                         "ARES_REQUIRES/... user in this file — annotate "
                         "what it guards (or delete it); an unannotated "
                         "mutex is invisible to -Wthread-safety "
                         "(DESIGN.md §11)")

    # -- rule: atomic-ordering -----------------------------------------------

    def ordering_note_near(self, sf, line):
        """True when raw line `line` carries an `ordering:` note, or the
        contiguous //-comment block directly above it does."""
        lines = sf.text.splitlines()
        if line - 1 < len(lines) and "ordering:" in lines[line - 1]:
            return True
        k = line - 1
        while k >= 1 and re.match(r"\s*//", lines[k - 1]):
            if "ordering:" in lines[k - 1]:
                return True
            k -= 1
        return False

    def check_atomic_ordering(self):
        src = self.root / "src"
        if not src.is_dir():
            return
        scan_dirs = [d.name for d in sorted(src.iterdir())
                     if d.is_dir() and d.name != "common"]
        for p in iter_files(src, scan_dirs):
            sf = SourceFile(p, str(p.relative_to(self.root)))
            for m in ATOMIC_DECL.finditer(sf.code):
                line = sf.line_of(m.start())
                if self.ordering_note_near(sf, line):
                    continue
                self.add("atomic-ordering", sf, m.start(),
                         "std::atomic without an `// ordering:` note — state "
                         "the memory-order discipline (relaxed? release/"
                         "acquire pair?) and what publishes what, on the "
                         "declaration line or in the comment block above")

    # -- rule: shard-seam ----------------------------------------------------

    def check_shard_seam(self):
        src = self.root / "src"
        if not src.is_dir():
            return
        scan_dirs = [d.name for d in sorted(src.iterdir())
                     if d.is_dir() and d.name != "sim"]
        for p in iter_files(src, scan_dirs):
            sf = SourceFile(p, str(p.relative_to(self.root)))
            for rx, what in SHARD_SEAM:
                for m in rx.finditer(sf.code):
                    self.add("shard-seam", sf, m.start(),
                             f"{what} outside src/sim — cross-shard state "
                             "moves only through the Network send/timer seam "
                             "(sim/network.h); direct shard scheduling "
                             "bypasses the determinism contract "
                             "(DESIGN.md, 'Sharded execution')")

    # -- rule: net-seam ------------------------------------------------------

    def check_net_seam(self):
        src = self.root / "src"
        if not src.is_dir():
            return
        scan_dirs = [d.name for d in sorted(src.iterdir())
                     if d.is_dir() and d.name != "net"]
        for p in iter_files(src, scan_dirs):
            sf = SourceFile(p, str(p.relative_to(self.root)))
            # Raw text (like layering): includes live outside stripped code.
            for m in ANGLE_INCLUDE.finditer(sf.text):
                if m.group(1) in NET_SEAM_HEADERS:
                    self.add("net-seam", sf, m.start(),
                             f"<{m.group(1)}> outside src/net — raw socket/"
                             "process syscalls are confined to the UDP "
                             "backend; go through the net/process.h wrappers "
                             "so every other layer stays kernel-free")

    # -- rule: layering ------------------------------------------------------

    def check_layering(self):
        src = self.root / "src"
        if not src.is_dir():
            return
        edge_violations = {}  # (from_dir, to_dir) -> [finding]
        for d in sorted(src.iterdir()):
            if not d.is_dir():
                continue
            layer = d.name
            allowed = set(LAYERS.get(layer, [])) | {layer}
            for p in iter_files(src, [layer]):
                sf = SourceFile(p, str(p.relative_to(self.root)))
                # Raw text, not comment-stripped code: the stripper blanks
                # string literals, which would erase the include paths (a
                # `// #include` comment can't match the ^#include anchor).
                for m in INCLUDE.finditer(sf.text):
                    header = m.group(1)
                    target = header.split("/", 1)[0] if "/" in header else None
                    if target is None or target not in LAYERS:
                        continue  # relative or external include: not an edge
                    if target in allowed:
                        continue
                    line = sf.line_of(m.start())
                    tag = sf.suppressed("layering", line)
                    if tag is not None and tag[1]:
                        self.suppression_counts["layering"] += 1
                        continue
                    edge_violations.setdefault((layer, target), []).append(
                        (sf.rel, line, header))
        for (frm, to), sites in sorted(edge_violations.items()):
            allowed = ", ".join(LAYERS.get(frm, [])) or "(nothing)"
            for rel, line, header in sites:
                self.findings.append(Finding(
                    "layering", rel, line,
                    f'forbidden edge src/{frm} -> src/{to} (include "{header}"); '
                    f"src/{frm} may include only: {allowed}"))

    # -- rule: codec ---------------------------------------------------------

    def check_codec(self):
        enum_sf = self.load(CODEC_ENUM)
        if enum_sf is None:
            return  # repo without a wire layer (fixture trees)
        em = re.search(r"enum\s+class\s+Kind[^{]*\{(.*?)\}", enum_sf.code,
                       re.S)
        if em is None:
            self.findings.append(Finding(
                "codec", CODEC_ENUM, 0, "could not locate 'enum class Kind'"))
            return
        kinds = []
        for m in re.finditer(r"\b(k[A-Z]\w*)\s*=?", em.group(1)):
            if m.group(1) not in CODEC_SENTINELS:
                kinds.append((m.group(1),
                              enum_sf.line_of(em.start(1) + m.start())))
        impl_sf = self.load(CODEC_IMPL)
        test_sf = self.load(CODEC_TEST)
        impl = impl_sf.code if impl_sf else ""
        test = test_sf.code if test_sf else ""
        for kind, line in kinds:
            if not re.search(r"register_codec\s*\(\s*Kind\s*::\s*" + kind + r"\b",
                             impl):
                self.findings.append(Finding(
                    "codec", CODEC_ENUM, line,
                    f"Kind::{kind} has no register_codec() call in "
                    f"{CODEC_IMPL} — every wire kind ships with a codec"))
            if not re.search(r"\bKind\s*::\s*" + kind + r"\b", test):
                self.findings.append(Finding(
                    "codec", CODEC_ENUM, line,
                    f"Kind::{kind} has no round-trip case in {CODEC_TEST} — "
                    "every wire kind gets encode/decode property coverage"))

    # -- rule: delta-codec ---------------------------------------------------

    def check_delta_codec(self):
        impl_sf = self.load(CODEC_IMPL)
        if impl_sf is None:
            return  # repo without a wire layer (fixture trees)
        legacy = set(re.findall(r"register_codec\s*\(\s*Kind\s*::\s*(\w+)",
                                impl_sf.code))
        for m in re.finditer(r"register_delta_codec\s*\(\s*Kind\s*::\s*(\w+)",
                             impl_sf.code):
            kind = m.group(1)
            if kind in legacy:
                continue
            self.findings.append(Finding(
                "delta-codec", CODEC_IMPL, impl_sf.line_of(m.start()),
                f"Kind::{kind} registers a delta codec without a matching "
                f"register_codec() in {CODEC_IMPL} — the legacy form is the "
                "default encoding and the only decode path with delta off"))

    def run(self):
        self.check_unordered_iter()
        self.check_forbidden_api()
        self.check_raw_descriptor_vec()
        self.check_raw_mutex()
        self.check_mutex_guard()
        self.check_atomic_ordering()
        self.check_shard_seam()
        self.check_net_seam()
        self.check_layering()
        self.check_codec()
        self.check_delta_codec()
        return self.findings


# ---- baseline -----------------------------------------------------------------


def read_baseline(path: pathlib.Path):
    counts = {}
    if not path.is_file():
        return counts
    for raw in path.read_text().splitlines():
        ln = raw.strip()
        if not ln or ln.startswith("#"):
            continue
        rule, _, num = ln.partition(" ")
        counts[rule] = int(num)
    return counts


def write_baseline(path: pathlib.Path, counts):
    lines = ["# ares-lint suppression baseline: per-rule count of documented",
             "# ares-lint:<rule>-ok(reason) tags. CI asserts the live count",
             "# never exceeds these numbers; shrink freely, grow deliberately",
             "# (tools/ares_lint.py --update-baseline)."]
    for rule in sorted(counts):
        lines.append(f"{rule} {counts[rule]}")
    path.write_text("\n".join(lines) + "\n")


# ---- self-test ----------------------------------------------------------------


def self_test(fixture_root: pathlib.Path) -> int:
    bad = Linter(fixture_root / "bad_tree")
    bad_findings = bad.run()
    by_rule = {}
    for f in bad_findings:
        by_rule.setdefault(f.rule, []).append(f)
    failures = []
    expect = {
        "unordered-iter": 2,       # range-for + .begin() traversal
        "forbidden-api": 2,        # random_device + getenv
        "raw-descriptor-vec": 2,   # vector<AttrValue> + vector<CellIndex>
        "raw-mutex": 2,            # <mutex> include + std::lock_guard
        "mutex-guard": 2,          # two unannotated ares::Mutex members
        "atomic-ordering": 2,      # two std::atomic decls without a note
        "shard-seam": 2,           # push_keyed + alloc_key outside src/sim
        "net-seam": 3,             # sys/socket.h + sys/epoll.h + unistd.h
        "layering": 2,             # gossip -> sim, gossip -> exp
        "codec": 2,                # kPong: missing registration + missing test
        "delta-codec": 2,          # kPong + kTestBase delta-only registrations
    }
    for rule, minimum in expect.items():
        got = len(by_rule.get(rule, []))
        if got < minimum:
            failures.append(
                f"bad_tree: expected >= {minimum} '{rule}' findings, got {got}")
    clean = Linter(fixture_root / "clean_tree")
    clean_findings = clean.run()
    if clean_findings:
        failures.append("clean_tree: expected no findings, got:")
        failures += [f"  {f}" for f in clean_findings]
    if clean.suppression_counts.get("unordered-iter") != 1:
        failures.append(
            "clean_tree: expected exactly 1 documented unordered-iter "
            f"suppression, got {clean.suppression_counts}")
    if failures:
        print("ares-lint self-test FAILED:")
        for f in failures:
            print(" ", f)
        print("\nbad_tree findings were:")
        for f in bad_findings:
            print(" ", f)
        return 1
    print(f"ares-lint self-test OK: bad_tree raised "
          f"{len(bad_findings)} findings across {len(by_rule)} rules; "
          "clean_tree is clean with 1 documented suppression")
    return 0


# ---- main ---------------------------------------------------------------------


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--root", default=".", help="repo root (default: cwd)")
    ap.add_argument("--baseline", default=None,
                    help="suppression baseline file "
                         "(default: <root>/tools/lint_baseline.txt)")
    ap.add_argument("--update-baseline", action="store_true",
                    help="rewrite the baseline with the current counts")
    ap.add_argument("--self-test", metavar="FIXTURE_DIR",
                    help="run against the bad/clean fixture trees and verify "
                         "every rule fires (and only where it should)")
    args = ap.parse_args(argv)

    if args.self_test:
        return self_test(pathlib.Path(args.self_test))

    root = pathlib.Path(args.root).resolve()
    if not (root / "src").is_dir():
        print(f"ares-lint: no src/ under {root}", file=sys.stderr)
        return 2

    linter = Linter(root)
    findings = linter.run()
    for f in findings:
        print(f)

    baseline_path = pathlib.Path(args.baseline) if args.baseline \
        else root / "tools" / "lint_baseline.txt"
    if args.update_baseline:
        write_baseline(baseline_path, linter.suppression_counts)
        print(f"ares-lint: baseline updated: {linter.suppression_counts}")
    else:
        baseline = read_baseline(baseline_path)
        for rule, count in sorted(linter.suppression_counts.items()):
            allowed = baseline.get(rule, 0)
            if count > allowed:
                print(f"{baseline_path}: [baseline] {rule} suppressions grew: "
                      f"{count} > {allowed} — remove the new tag or update "
                      "the baseline deliberately (--update-baseline)")
                findings.append(None)  # force failure

    if findings:
        n = len(findings)
        print(f"\nares-lint: {n} finding{'s' if n != 1 else ''}", file=sys.stderr)
        return 1
    print(f"ares-lint OK: {linter.suppression_counts} documented suppressions")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
