#!/usr/bin/env bash
# clang-format drift gate: every tracked C++ file must match .clang-format.
#
# Usage: tools/check_format.sh [--strict] [--fix]
#   --strict  missing clang-format is an error (CI). Default: skip with a
#             notice.
#   --fix     rewrite drifting files in place instead of failing.

set -euo pipefail

cd "$(dirname "$0")/.."

strict=0
fix=0
for arg in "$@"; do
  case "$arg" in
    --strict) strict=1 ;;
    --fix) fix=1 ;;
  esac
done

cf="$(command -v clang-format || true)"
if [[ -z "$cf" ]]; then
  cf="$(compgen -c clang-format- 2>/dev/null | grep -E 'clang-format-[0-9]+$' \
        | sort -Vr | head -n1 || true)"
fi
if [[ -z "$cf" ]]; then
  if [[ "$strict" == 1 ]]; then
    echo "check_format: clang-format not found (required with --strict)" >&2
    exit 1
  fi
  echo "check_format: clang-format not installed — skipping (CI enforces it)"
  exit 0
fi

mapfile -t files < <(git ls-files 'src/**/*.cpp' 'src/**/*.h' \
  'tests/**/*.cpp' 'tests/**/*.h' 'bench/**/*.cpp' 'bench/**/*.h' \
  'examples/**/*.cpp' | grep -v '^tests/tools/fixtures/')

if [[ "$fix" == 1 ]]; then
  "$cf" -i "${files[@]}"
  echo "check_format: reformatted ${#files[@]} files"
  exit 0
fi

"$cf" --dry-run -Werror "${files[@]}"
echo "check_format: ${#files[@]} files clean"
