#!/usr/bin/env bash
# clang-tidy driver: zero-warning gate over every translation unit in src/.
#
# Usage: tools/run_clang_tidy.sh [--strict] [BUILD_DIR]
#
#   BUILD_DIR   build tree with compile_commands.json (default: build; it is
#               configured on demand — CMAKE_EXPORT_COMPILE_COMMANDS is ON
#               in the top-level CMakeLists).
#   --strict    missing clang-tidy is an error (CI). Default: skip with a
#               notice so local machines without LLVM tooling aren't blocked
#               (the checks still gate in CI's static-analysis job).
#
# The config lives in .clang-tidy (curated check list with a documented
# disable list); findings are promoted to errors via WarningsAsErrors.

set -euo pipefail

cd "$(dirname "$0")/.."

strict=0
build_dir=build
for arg in "$@"; do
  case "$arg" in
    --strict) strict=1 ;;
    *) build_dir="$arg" ;;
  esac
done

tidy="$(command -v clang-tidy || true)"
if [[ -z "$tidy" ]]; then
  # Distro-suffixed binaries (clang-tidy-18, ...): newest first.
  tidy="$(compgen -c clang-tidy- 2>/dev/null | sort -Vr | head -n1 || true)"
fi
if [[ -z "$tidy" ]]; then
  if [[ "$strict" == 1 ]]; then
    echo "run_clang_tidy: clang-tidy not found (required with --strict)" >&2
    exit 1
  fi
  echo "run_clang_tidy: clang-tidy not installed — skipping (CI enforces it)"
  exit 0
fi

if [[ ! -f "$build_dir/compile_commands.json" ]]; then
  echo "run_clang_tidy: configuring $build_dir for compile_commands.json"
  cmake -B "$build_dir" -S . >/dev/null
fi

mapfile -t sources < <(find src -name '*.cpp' | sort)
echo "run_clang_tidy: $tidy over ${#sources[@]} files ($build_dir)"

# run-clang-tidy (parallel driver) when available, plain loop otherwise.
runner="$(command -v run-clang-tidy || true)"
if [[ -z "$runner" ]]; then
  runner="$(compgen -c run-clang-tidy- 2>/dev/null | sort -Vr | head -n1 || true)"
fi
if [[ -n "$runner" ]]; then
  "$runner" -clang-tidy-binary "$tidy" -p "$build_dir" -quiet "${sources[@]/#/$PWD/}"
else
  fail=0
  for f in "${sources[@]}"; do
    "$tidy" -p "$build_dir" --quiet "$f" || fail=1
  done
  [[ "$fail" == 0 ]]
fi
echo "run_clang_tidy: clean"
